//! Reproductions of the paper's Figures 12-18.

use patdnn_compiler::csr::CsrLayer;
use patdnn_compiler::fkr::{filter_kernel_reorder, FilterOrder};
use patdnn_nn::models::{mobilenet_v2, resnet50, vgg16, DatasetKind, ModelSpec};
use patdnn_runtime::counters::{dense_gflops, pattern_register_loads};
use patdnn_runtime::executor::{measure, ConvExecutor};
use patdnn_runtime::gpu::simulate_pattern_conv;
use patdnn_runtime::pattern_exec::OptLevel;
use patdnn_runtime::platform::Platform;
use patdnn_tensor::{Conv2dGeometry, Tensor};

use crate::report::{fmt_ms, Table};
use crate::workloads::{
    model_cpu_time, model_gpu_time, vgg_unique_workloads, Framework, PrunedLayer,
};
use crate::RunOptions;

fn paper_models() -> Vec<ModelSpec> {
    vec![
        vgg16(DatasetKind::ImageNet),
        resnet50(DatasetKind::ImageNet),
        mobilenet_v2(DatasetKind::ImageNet),
        vgg16(DatasetKind::Cifar10),
        resnet50(DatasetKind::Cifar10),
        mobilenet_v2(DatasetKind::Cifar10),
    ]
}

/// Figure 12: overall inference time of the four frameworks across the
/// six model×dataset combinations, CPU and (simulated) GPU.
pub fn fig12(opts: &RunOptions) -> Vec<Table> {
    let mut cpu = Table::new(
        "Figure 12 (CPU): conv-stack execution time (ms)",
        &[
            "Model",
            "Dataset",
            "TFLite",
            "TVM",
            "MNN",
            "PatDNN",
            "Best speedup",
        ],
    );
    let mut gpu = Table::new(
        "Figure 12 (GPU, simulated Adreno 640): conv-stack execution time (ms)",
        &[
            "Model",
            "Dataset",
            "TFLite",
            "TVM",
            "MNN",
            "PatDNN",
            "Best speedup",
        ],
    );
    let gpu_model = Platform::snapdragon_855().gpu;
    for spec in paper_models() {
        let mut cpu_row = vec![spec.short_name.clone(), spec.dataset.label().to_owned()];
        let mut gpu_row = cpu_row.clone();
        let mut cpu_times = Vec::new();
        let mut gpu_times = Vec::new();
        for fw in Framework::figure12() {
            let t = model_cpu_time(&spec, fw, 8, 3.6, opts.threads, opts.reps, |hw| {
                opts.scale_hw(hw)
            });
            cpu_times.push(t);
            cpu_row.push(fmt_ms(t));
            let g = model_gpu_time(&spec, fw, 8, 3.6, &gpu_model, |hw| opts.scale_hw(hw));
            gpu_times.push(g);
            gpu_row.push(format!("{g:.1}"));
        }
        let pat_cpu = cpu_times[3];
        let best_cpu = cpu_times[..3]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        cpu_row.push(format!("{:.1}x", best_cpu / pat_cpu));
        cpu.push_row(cpu_row);
        let pat_gpu = gpu_times[3];
        let best_gpu = gpu_times[..3]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        gpu_row.push(format!("{:.1}x", best_gpu / pat_gpu));
        gpu.push_row(gpu_row);
    }
    vec![cpu, gpu]
}

/// Figure 13: speedup of each optimization level over No-opt, per unique
/// VGG CONV layer, CPU (measured) and GPU (simulated).
pub fn fig13(opts: &RunOptions) -> Vec<Table> {
    let mut cpu = Table::new(
        "Figure 13 (CPU): speedup over No-opt per unique VGG layer",
        &["Layer", "No-Opt", "+Reorder", "+LRE", "+Tune"],
    );
    let mut gpu = Table::new(
        "Figure 13 (GPU sim): speedup over No-opt per unique VGG layer",
        &["Layer", "No-Opt", "+Reorder", "+LRE", "+Tune"],
    );
    let gpu_model = Platform::snapdragon_855().gpu;
    for (name, layer, _) in vgg_unique_workloads(8, 3.6, |hw| opts.scale_hw(hw)) {
        let input = layer.input(1);
        let mut cpu_times = Vec::new();
        let mut gpu_cycles = Vec::new();
        for level in OptLevel::all() {
            let exec = layer.pattern_exec(level);
            cpu_times.push(measure(&exec, &input, opts.reps).seconds);
            gpu_cycles.push(simulate_pattern_conv(&gpu_model, &exec, &input).cycles);
        }
        let base_cpu = cpu_times[0];
        let base_gpu = gpu_cycles[0];
        cpu.push_row(
            std::iter::once(name.clone())
                .chain(cpu_times.iter().map(|t| format!("{:.2}x", base_cpu / t)))
                .collect(),
        );
        gpu.push_row(
            std::iter::once(name)
                .chain(gpu_cycles.iter().map(|c| format!("{:.2}x", base_gpu / c)))
                .collect(),
        );
    }
    vec![cpu, gpu]
}

/// Figure 14: (a) filter-length distribution before/after FKR on VGG L4;
/// (b) register load counts before/after LRE per unique layer.
pub fn fig14(opts: &RunOptions) -> Vec<Table> {
    let workloads = vgg_unique_workloads(8, 3.6, |hw| opts.scale_hw(hw));

    // (a) L4 filter lengths, before and after reorder.
    let (_, l4, _) = &workloads[3];
    let identity = FilterOrder::identity(&l4.lp);
    let reordered = filter_kernel_reorder(&l4.lp);
    let mut a = Table::new(
        "Figure 14a: VGG L4 filter lengths in storage order (first 16 rows)",
        &["Row", "No-Reorder length", "Reorder length"],
    );
    let before = identity.lengths_in_order(&l4.lp);
    let after = reordered.lengths_in_order(&l4.lp);
    for i in 0..16.min(before.len()) {
        a.push_row(vec![
            i.to_string(),
            before[i].to_string(),
            after[i].to_string(),
        ]);
    }
    a.push_row(vec![
        "imbalance".into(),
        identity.group_imbalance(&l4.lp).to_string(),
        reordered.group_imbalance(&l4.lp).to_string(),
    ]);

    // (b) register loads per layer.
    let mut b = Table::new(
        "Figure 14b: register load counts before/after LRE",
        &["Layer", "No-Eliminate", "Eliminate", "Reduction"],
    );
    for (name, layer, _) in &workloads {
        let exec = layer.pattern_exec(OptLevel::Full);
        let none = pattern_register_loads(&exec, OptLevel::NoOpt).total();
        let full = pattern_register_loads(&exec, OptLevel::Full).total();
        b.push_row(vec![
            name.clone(),
            none.to_string(),
            full.to_string(),
            format!("{:.1}%", (1.0 - full as f64 / none as f64) * 100.0),
        ]);
    }
    vec![a, b]
}

/// Pixel-major (CoHwCi) pattern execution used by the Figure 15
/// permutation study: output pixels outermost, kernels innermost.
fn run_pixel_major(layer: &PrunedLayer, input: &Tensor, tile_rows: Option<usize>) -> Tensor {
    let g = &layer.geo;
    let fkw = &layer.fkw;
    let np = fkw.patterns.len();
    let in_hw = g.in_h * g.in_w;
    let out_hw = g.out_h * g.out_w;
    let mut out = Tensor::zeros(&[1, g.out_channels, g.out_h, g.out_w]);
    let ind = input.data();
    let od = out.data_mut();
    let taps: Vec<Vec<(usize, usize)>> = fkw.patterns.iter().map(|p| p.positions()).collect();
    let entries = fkw.entries_per_kernel;
    let tile = tile_rows.unwrap_or(g.out_h).max(1);

    for (row, f) in fkw.rows() {
        let b = layer.bias[f];
        od[f * out_hw..(f + 1) * out_hw]
            .iter_mut()
            .for_each(|v| *v = b);
        for oh0 in (0..g.out_h).step_by(tile) {
            let oh1 = (oh0 + tile).min(g.out_h);
            for oh in oh0..oh1 {
                for ow in 0..g.out_w {
                    let mut acc = 0.0f32;
                    for p in 0..np {
                        for k in fkw.pattern_run(row, p) {
                            let ic = fkw.index[k] as usize;
                            let w = &fkw.weights[k * entries..(k + 1) * entries];
                            for (e, &(kh, kw)) in taps[p].iter().enumerate() {
                                let ih = (oh * g.stride + kh) as isize - g.pad as isize;
                                let iw = (ow * g.stride + kw) as isize - g.pad as isize;
                                if ih >= 0
                                    && ih < g.in_h as isize
                                    && iw >= 0
                                    && iw < g.in_w as isize
                                {
                                    acc +=
                                        w[e] * ind[ic * in_hw + ih as usize * g.in_w + iw as usize];
                                }
                            }
                        }
                    }
                    od[f * out_hw + oh * g.out_w + ow] += acc;
                }
            }
        }
    }
    out
}

/// Figure 15: GFLOPS across loop permutations ± blocking, per unique VGG
/// layer.
pub fn fig15(opts: &RunOptions) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 15: dense-equivalent GFLOPS by loop permutation (CPU, 1 thread)",
        &["Layer", "CoHWCi", "CoHWCi-Block", "CoCiHW", "CoCiHW-Block"],
    );
    for (name, layer, _) in vgg_unique_workloads(8, 3.6, |hw| opts.scale_hw(hw)) {
        let input = layer.input(2);
        let time_of = |f: &dyn Fn() -> Tensor| -> f64 {
            let _warm = f();
            let start = std::time::Instant::now();
            for _ in 0..opts.reps {
                std::hint::black_box(f());
            }
            start.elapsed().as_secs_f64() / opts.reps as f64
        };
        // CoHWCi: pixel-major; blocked variant tiles output rows.
        let t_hwci = time_of(&|| run_pixel_major(&layer, &input, None));
        let t_hwci_b = time_of(&|| run_pixel_major(&layer, &input, Some(8)));
        // CoCiHW: kernel-plane major (the Reorder executor), blocked adds LRE tiling.
        let reorder = layer.pattern_exec(OptLevel::Reorder);
        let lre = layer.pattern_exec(OptLevel::ReorderLre);
        let t_cihw = time_of(&|| reorder.run(&input));
        let t_cihw_b = time_of(&|| lre.run(&input));
        t.push_row(vec![
            name,
            format!("{:.2}", dense_gflops(&layer.geo, t_hwci)),
            format!("{:.2}", dense_gflops(&layer.geo, t_hwci_b)),
            format!("{:.2}", dense_gflops(&layer.geo, t_cihw)),
            format!("{:.2}", dense_gflops(&layer.geo, t_cihw_b)),
        ]);
    }
    vec![t]
}

/// Figure 16: FKW vs CSR extra data-structure overhead at 18×/12×/8×
/// overall pruning rates.
pub fn fig16(opts: &RunOptions) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 16: FKW extra structure as % of CSR's, per unique VGG layer",
        &["Layer", "18x rate", "12x rate", "8x rate"],
    );
    let mut totals = [0usize; 3];
    let mut csr_totals = [0usize; 3];
    let rates = [18.0f32, 12.0, 8.0];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (li, (name, _, _)) in vgg_unique_workloads(8, 3.6, |hw| opts.scale_hw(hw))
        .into_iter()
        .enumerate()
    {
        let mut cells = vec![name];
        for (ri, &rate) in rates.iter().enumerate() {
            // Overall rate = 2.25 (patterns) x connectivity.
            let conn = (rate / 2.25).max(1.0);
            let spec = patdnn_nn::models::vgg_unique_layers()[li].1.clone();
            let hw = opts.scale_hw(spec.in_h);
            let geo = Conv2dGeometry::new(spec.out_c, spec.in_c, 3, 3, hw, hw, 1, 1);
            let layer = PrunedLayer::from_geometry("f16", geo, 8, conn, 600 + li as u64);
            let csr = CsrLayer::from_dense(&layer.weights);
            totals[ri] += layer.fkw.extra_bytes();
            csr_totals[ri] += csr.extra_bytes();
            cells.push(format!(
                "{:.1}%",
                layer.fkw.extra_bytes() as f64 / csr.extra_bytes() as f64 * 100.0
            ));
        }
        rows.push(cells);
    }
    for cells in rows {
        t.push_row(cells);
    }
    t.push_row(vec![
        "All".into(),
        format!("{:.1}%", totals[0] as f64 / csr_totals[0] as f64 * 100.0),
        format!("{:.1}%", totals[1] as f64 / csr_totals[1] as f64 * 100.0),
        format!("{:.1}%", totals[2] as f64 / csr_totals[2] as f64 * 100.0),
    ]);
    vec![t]
}

/// Figure 17: (a) PatDNN dense vs MNN-like dense without Winograd;
/// (b) dense-equivalent GFLOPS, pattern vs dense, per layer.
pub fn fig17(opts: &RunOptions) -> Vec<Table> {
    let mut a = Table::new(
        "Figure 17a: dense VGG conv-stack time without Winograd (ms)",
        &["Executor", "CPU time"],
    );
    let spec = vgg16(DatasetKind::ImageNet);
    let mnn_no_wino = model_cpu_time(
        &spec,
        Framework::TvmLike,
        8,
        1.0,
        opts.threads,
        opts.reps,
        |hw| opts.scale_hw(hw),
    );
    let pat_dense = model_cpu_time(
        &spec,
        Framework::PatDnnDense,
        8,
        1.0,
        opts.threads,
        opts.reps,
        |hw| opts.scale_hw(hw),
    );
    a.push_row(vec!["MNN-like (no Winograd)".into(), fmt_ms(mnn_no_wino)]);
    a.push_row(vec!["PatDNN dense".into(), fmt_ms(pat_dense)]);

    let mut b = Table::new(
        "Figure 17b: dense-equivalent GFLOPS — pattern vs dense (CPU, 1 thread)",
        &["Layer", "CPU-Dense", "CPU-Pattern", "Ratio"],
    );
    for (name, layer, _) in vgg_unique_workloads(8, 3.6, |hw| opts.scale_hw(hw)) {
        let input = layer.input(3);
        let dense = patdnn_runtime::dense::TiledConv::new(
            layer.geo,
            layer.dense_weights.clone(),
            Some(layer.bias.clone()),
        );
        let t_dense = measure(&dense, &input, opts.reps).seconds;
        let pat = layer.pattern_exec(OptLevel::Full);
        let t_pat = measure(&pat, &input, opts.reps).seconds;
        b.push_row(vec![
            name,
            format!("{:.2}", dense_gflops(&layer.geo, t_dense)),
            format!("{:.2}", dense_gflops(&layer.geo, t_pat)),
            format!("{:.2}x", t_dense / t_pat),
        ]);
    }
    vec![a, b]
}

/// Figure 18: portability across platforms.
pub fn fig18(opts: &RunOptions) -> Vec<Table> {
    let spec = vgg16(DatasetKind::ImageNet);
    let mut out = Vec::new();
    for platform in Platform::all() {
        let mut t = Table::new(
            &format!("Figure 18 ({}): VGG conv-stack time (ms)", platform.name),
            &["Framework", "CPU", "GPU (sim)"],
        );
        for fw in Framework::figure12() {
            let host = model_cpu_time(&spec, fw, 8, 3.6, opts.threads, opts.reps, |hw| {
                opts.scale_hw(hw)
            });
            // Dense frameworks are more load-bound than PatDNN.
            let load_frac = if fw == Framework::PatDnn { 0.25 } else { 0.55 };
            let cpu = platform.scale_cpu_seconds(host, load_frac);
            let gpu = model_gpu_time(&spec, fw, 8, 3.6, &platform.gpu, |hw| opts.scale_hw(hw));
            t.push_row(vec![fw.label().into(), fmt_ms(cpu), format!("{gpu:.1}")]);
        }
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunOptions {
        RunOptions::quick()
    }

    #[test]
    fn fig14_reorder_balances_l4() {
        let tables = fig14(&quick());
        let a = &tables[0];
        // Last row reports imbalance: reorder column must be 0.
        let last = a.rows.last().expect("imbalance row");
        assert_eq!(last[2], "0");
        let b = &tables[1];
        assert_eq!(b.rows.len(), 9);
        for r in 0..9 {
            let before: u64 = b.cell(r, 1).parse().expect("count");
            let after: u64 = b.cell(r, 2).parse().expect("count");
            assert!(after < before, "LRE must reduce loads on {}", b.cell(r, 0));
        }
    }

    #[test]
    fn fig16_fkw_is_fraction_of_csr() {
        let tables = fig16(&quick());
        let t = &tables[0];
        let all = t.rows.last().expect("summary row");
        for cell in &all[1..] {
            let pct: f64 = cell.trim_end_matches('%').parse().expect("pct");
            assert!(pct < 50.0, "FKW should be well under half of CSR: {cell}");
        }
    }

    #[test]
    fn pixel_major_matches_reference() {
        let geo = Conv2dGeometry::new(6, 6, 3, 3, 9, 9, 1, 1);
        let layer = PrunedLayer::from_geometry("pm", geo, 8, 3.6, 5);
        let input = layer.input(6);
        let expect = patdnn_tensor::conv2d_ref(&input, &layer.weights, Some(&layer.bias), &geo);
        for tile in [None, Some(4)] {
            let got = run_pixel_major(&layer, &input, tile);
            assert!(expect.approx_eq(&got, 1e-3), "tile {tile:?}");
        }
    }
}
