//! Reproductions of the paper's Tables 1-7.

use patdnn_core::admm::{AdmmConfig, AdmmPruner};
use patdnn_core::prune::{
    admm_nonstructured_prune, magnitude_prune, structured_prune, StructuredKind,
};
use patdnn_nn::data::Dataset;
use patdnn_nn::models::{mobilenet_v2, resnet50, vgg16, vgg_small, vgg_unique_layers, DatasetKind};
use patdnn_nn::network::Sequential;
use patdnn_nn::optim::Adam;
use patdnn_nn::train::{evaluate, train, Accuracy, TrainConfig};
use patdnn_runtime::executor::measure;
use patdnn_runtime::gpu::GpuModel;
use patdnn_runtime::pattern_exec::OptLevel;
use patdnn_tensor::rng::Rng;
use patdnn_tensor::Conv2dGeometry;

use crate::report::{fmt_ms, fmt_pct, Table};
use crate::workloads::{Framework, PrunedLayer};
use crate::RunOptions;

/// Table 1: the optimization-knob capability matrix. Static by nature —
/// it documents which knobs each (re-implemented) framework exercises.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: DNN acceleration framework optimization knobs",
        &["Optimization knob", "TFLite", "TVM", "MNN", "PatDNN"],
    );
    let rows: [(&str, [&str; 4]); 9] = [
        ("Parameter auto-tuning", ["N", "Y", "N", "Y"]),
        ("Dense CPU/GPU support", ["Y", "Y", "Y", "Y"]),
        ("Computation graph optimization", ["Y", "Y", "Y", "Y"]),
        ("Sparse DNN model support", ["N", "N", "N", "Y"]),
        ("Pattern-based pruning", ["N", "N", "N", "Y"]),
        ("Connectivity pruning", ["N", "N", "N", "Y"]),
        ("Filter kernel reordering", ["N", "N", "N", "Y"]),
        ("Opt. sparse kernel code generation", ["N", "N", "N", "Y"]),
        ("Auto-tuning for sparse models", ["N", "N", "N", "Y"]),
    ];
    for (knob, cells) in rows {
        t.push_row(vec![
            knob.into(),
            cells[0].into(),
            cells[1].into(),
            cells[2].into(),
            cells[3].into(),
        ]);
    }
    t
}

/// Shared accuracy-experiment setup: a trained `vgg_small` on synthetic
/// CIFAR-shaped data.
fn trained_base(seed: u64, opts: &RunOptions) -> (Sequential, Dataset, Dataset, Accuracy) {
    let mut rng = Rng::seed_from(seed);
    let per_class = if opts.quick { 10 } else { 24 };
    let data = Dataset::cifar_like(per_class, 0.6, &mut rng);
    let (train_ds, test_ds) = data.split(0.8);
    let mut net = vgg_small(10, &mut rng);
    let mut opt = Adam::new(2e-3);
    let cfg = TrainConfig {
        epochs: if opts.quick { 3 } else { 8 },
        batch_size: 16,
        verbose: false,
    };
    train(&mut net, &train_ds, &mut opt, &cfg, &mut rng);
    let base = evaluate(&mut net, &test_ds);
    (net, train_ds, test_ds, base)
}

fn admm_cfg(patterns: usize, conn_rate: f32, opts: &RunOptions) -> AdmmConfig {
    AdmmConfig {
        pattern_count: patterns,
        connectivity_rate: conn_rate,
        spare_first_layer: true,
        rho: 1e-2,
        iterations: if opts.quick { 2 } else { 3 },
        epochs_per_iteration: 1,
        retrain_epochs: if opts.quick { 3 } else { 6 },
        batch_size: 16,
        lr: 1e-3,
        connectivity_only: false,
    }
}

/// Table 2: qualitative scheme comparison measured quantitatively —
/// accuracy change and layer speedup at a matched ~2.25× pruning rate.
pub fn table2(opts: &RunOptions) -> Table {
    let mut t = Table::new(
        "Table 2: pruning schemes at matched ~2.25x rate (accuracy vs speedup)",
        &[
            "Scheme",
            "Top-1 before",
            "Top-1 after",
            "Layer speedup vs dense",
        ],
    );
    // Speedup micro-benchmark layer (VGG L6-like, scaled).
    let hw = opts.scale_hw(56);
    let geo = Conv2dGeometry::new(64, 64, 3, 3, hw, hw, 1, 1);
    let rate = 2.25f32;

    // Dense reference time.
    let dense_layer = PrunedLayer::from_geometry("t2", geo, 8, 1.0, 42);
    let dense_time = dense_layer.measure_cpu(Framework::PatDnnDense, opts.threads, opts.reps, 1);

    // Non-structured magnitude -> CSR execution.
    {
        let (mut net, train_ds, test_ds, base) = trained_base(21, opts);
        magnitude_prune(
            &mut net,
            &train_ds,
            rate,
            3,
            16,
            1e-3,
            &mut Rng::seed_from(5),
        );
        let after = evaluate(&mut net, &test_ds);
        let csr_layer = PrunedLayer::from_geometry("t2c", geo, 8, rate, 43);
        let csr_time = csr_layer.measure_cpu(Framework::PatDnnCsr, opts.threads, opts.reps, 2);
        t.push_row(vec![
            "Non-structured".into(),
            fmt_pct(base.top1 as f64),
            fmt_pct(after.top1 as f64),
            format!("{:.2}x", dense_time / csr_time),
        ]);
    }
    // Filter structured -> smaller dense layer.
    {
        let (mut net, train_ds, test_ds, base) = trained_base(22, opts);
        structured_prune(
            &mut net,
            &train_ds,
            StructuredKind::Filter,
            rate,
            3,
            16,
            1e-3,
            &mut Rng::seed_from(6),
        );
        let after = evaluate(&mut net, &test_ds);
        let shrunk = Conv2dGeometry::new(((64.0 / rate) as usize).max(1), 64, 3, 3, hw, hw, 1, 1);
        let small = PrunedLayer::from_geometry("t2f", shrunk, 8, 1.0, 44);
        let time = small.measure_cpu(Framework::PatDnnDense, opts.threads, opts.reps, 3);
        t.push_row(vec![
            "Filter/Channel".into(),
            fmt_pct(base.top1 as f64),
            fmt_pct(after.top1 as f64),
            format!("{:.2}x", dense_time / time),
        ]);
    }
    // Kernel pattern only (4-entry patterns are exactly 2.25x on 3x3).
    {
        let (mut net, train_ds, test_ds, base) = trained_base(23, opts);
        let pruner = AdmmPruner::new(admm_cfg(8, 1.0, opts));
        pruner.prune(&mut net, &train_ds, &mut Rng::seed_from(7));
        let after = evaluate(&mut net, &test_ds);
        let pat_layer = PrunedLayer::from_geometry("t2p", geo, 8, 1.0, 45);
        let time = pat_layer.measure_cpu(Framework::PatDnn, opts.threads, opts.reps, 4);
        t.push_row(vec![
            "Pattern".into(),
            fmt_pct(base.top1 as f64),
            fmt_pct(after.top1 as f64),
            format!("{:.2}x", dense_time / time),
        ]);
    }
    // Connectivity only at 2.25x.
    {
        let (mut net, train_ds, test_ds, base) = trained_base(24, opts);
        let mut cfg = admm_cfg(8, rate, opts);
        cfg.spare_first_layer = false;
        cfg.connectivity_only = true;
        let pruner = AdmmPruner::new(cfg);
        pruner.prune(&mut net, &train_ds, &mut Rng::seed_from(8));
        let after = evaluate(&mut net, &test_ds);
        let conn_layer = PrunedLayer::from_geometry_connectivity_only("t2n", geo, rate, 46);
        let time = conn_layer.measure_cpu(Framework::PatDnn, opts.threads, opts.reps, 5);
        t.push_row(vec![
            "Connectivity".into(),
            fmt_pct(base.top1 as f64),
            fmt_pct(after.top1 as f64),
            format!("{:.2}x", dense_time / time),
        ]);
    }
    t
}

/// Table 3: accuracy vs pattern-set size (kernel pattern pruning only),
/// on the scaled-down VGG and ResNet proxies over synthetic data.
pub fn table3(opts: &RunOptions) -> Table {
    let mut t = Table::new(
        "Table 3: top-5 accuracy vs pattern count (kernel pattern pruning only)",
        &[
            "Network",
            "Original",
            "6-pattern",
            "8-pattern",
            "12-pattern",
        ],
    );
    for (net_name, seed) in [("VGG-small", 31u64), ("ResNet-small", 32u64)] {
        let mut cells = vec![net_name.to_owned()];
        // Original accuracy.
        let (mut base_net, train_ds, test_ds, base) = trained_base_named(net_name, seed, opts);
        let _ = &mut base_net;
        cells.push(fmt_pct(base.top5 as f64));
        for patterns in [6usize, 8, 12] {
            let (mut net, train_ds2, test_ds2, _) = trained_base_named(net_name, seed, opts);
            let _ = (&train_ds, &test_ds);
            let pruner = AdmmPruner::new(admm_cfg(patterns, 1.0, opts));
            pruner.prune(
                &mut net,
                &train_ds2,
                &mut Rng::seed_from(seed + patterns as u64),
            );
            let after = evaluate(&mut net, &test_ds2);
            cells.push(fmt_pct(after.top5 as f64));
        }
        t.push_row(cells);
    }
    t
}

fn trained_base_named(
    name: &str,
    seed: u64,
    opts: &RunOptions,
) -> (Sequential, Dataset, Dataset, Accuracy) {
    let mut rng = Rng::seed_from(seed);
    let per_class = if opts.quick { 10 } else { 24 };
    let data = Dataset::cifar_like(per_class, 0.6, &mut rng);
    let (train_ds, test_ds) = data.split(0.8);
    let mut net = if name.starts_with("ResNet") {
        patdnn_nn::models::resnet_small(10, &mut rng)
    } else {
        vgg_small(10, &mut rng)
    };
    let mut opt = Adam::new(2e-3);
    let cfg = TrainConfig {
        epochs: if opts.quick { 3 } else { 8 },
        batch_size: 16,
        verbose: false,
    };
    train(&mut net, &train_ds, &mut opt, &cfg, &mut rng);
    let base = evaluate(&mut net, &test_ds);
    (net, train_ds, test_ds, base)
}

/// Table 4: joint pattern + connectivity pruning vs non-structured
/// baselines — accuracy and CONV compression rate.
pub fn table4(opts: &RunOptions) -> Table {
    let mut t = Table::new(
        "Table 4: joint pruning vs non-structured baselines (VGG-small proxy)",
        &["Method", "Top-5 before", "Top-5 after", "CONV compression"],
    );
    // Magnitude (Deep-Compression-like) at 8x.
    {
        let (mut net, train_ds, test_ds, base) = trained_base(41, opts);
        let out = magnitude_prune(
            &mut net,
            &train_ds,
            8.0,
            3,
            16,
            1e-3,
            &mut Rng::seed_from(9),
        );
        let after = evaluate(&mut net, &test_ds);
        t.push_row(vec![
            "Magnitude non-structured (Deep Compr.-like)".into(),
            fmt_pct(base.top5 as f64),
            fmt_pct(after.top5 as f64),
            format!("{:.1}x", out.conv_compression),
        ]);
    }
    // ADMM non-structured (ADMM-NN) at 8x.
    {
        let (mut net, train_ds, test_ds, base) = trained_base(42, opts);
        let out = admm_nonstructured_prune(
            &mut net,
            &train_ds,
            8.0,
            &admm_cfg(8, 3.6, opts),
            &mut Rng::seed_from(10),
        );
        let after = evaluate(&mut net, &test_ds);
        t.push_row(vec![
            "ADMM-NN non-structured".into(),
            fmt_pct(base.top5 as f64),
            fmt_pct(after.top5 as f64),
            format!("{:.1}x", out.conv_compression),
        ]);
    }
    // Ours: 8 patterns + 3.6x connectivity (~8x on 3x3 convs).
    {
        let (mut net, train_ds, test_ds, base) = trained_base(43, opts);
        let pruner = AdmmPruner::new(admm_cfg(8, 3.6, opts));
        let (pruned, _) = pruner.prune(&mut net, &train_ds, &mut Rng::seed_from(11));
        let after = evaluate(&mut net, &test_ds);
        t.push_row(vec![
            "Ours (8-pattern + 3.6x connectivity)".into(),
            fmt_pct(base.top5 as f64),
            fmt_pct(after.top5 as f64),
            format!("{:.1}x", pruned.conv_compression()),
        ]);
    }
    t
}

/// Table 5: model characteristics from the exact layer inventories.
pub fn table5() -> Table {
    let mut t = Table::new(
        "Table 5: DNN characteristics (spec-derived; accuracy cols are the paper's)",
        &[
            "Name",
            "Network",
            "Dataset",
            "Layers",
            "Conv",
            "Size (MB)",
            "Patterns",
            "Paper top accu",
        ],
    );
    let specs = [
        (vgg16(DatasetKind::ImageNet), "91.6%"),
        (vgg16(DatasetKind::Cifar10), "93.9%"),
        (resnet50(DatasetKind::ImageNet), "92.5%"),
        (resnet50(DatasetKind::Cifar10), "95.6%"),
        (mobilenet_v2(DatasetKind::ImageNet), "90.3%"),
        (mobilenet_v2(DatasetKind::Cifar10), "94.6%"),
    ];
    for (spec, accu) in specs {
        t.push_row(vec![
            spec.short_name.clone(),
            spec.name.clone(),
            spec.dataset.label().into(),
            spec.layer_count().to_string(),
            spec.conv_layer_count().to_string(),
            format!("{:.1}", spec.size_mb()),
            "8".into(),
            (*accu).into(),
        ]);
    }
    t
}

/// Table 6: VGG-16's unique CONV layers L1-L9.
pub fn table6() -> Table {
    let mut t = Table::new(
        "Table 6: VGG-16 unique CONV layer filter shapes",
        &["Name", "Filter shape", "Input HxW", "Multiplicity"],
    );
    for (name, spec, mult) in vgg_unique_layers() {
        t.push_row(vec![
            name,
            spec.filter_shape(),
            format!("{}x{}", spec.in_h, spec.in_w),
            mult.to_string(),
        ]);
    }
    t
}

/// Table 7: pattern-count impact on accuracy and VGG execution time.
pub fn table7(opts: &RunOptions) -> Table {
    let mut t = Table::new(
        "Table 7: pattern count impact (3.6x connectivity)",
        &[
            "#Patterns",
            "Top-5 accuracy",
            "CPU time (ms)",
            "GPU time (ms)",
        ],
    );
    let gpu = GpuModel::adreno_640();
    for patterns in [6usize, 8, 12] {
        // Accuracy on the proxy model.
        let (mut net, train_ds, test_ds, _) = trained_base(70 + patterns as u64, opts);
        let pruner = AdmmPruner::new(admm_cfg(patterns, 3.6, opts));
        pruner.prune(
            &mut net,
            &train_ds,
            &mut Rng::seed_from(12 + patterns as u64),
        );
        let after = evaluate(&mut net, &test_ds);
        // Execution time over the unique VGG layers x multiplicity.
        let workloads =
            crate::workloads::vgg_unique_workloads(patterns, 3.6, |hw| opts.scale_hw(hw));
        let mut cpu = 0.0;
        let mut gpu_ms = 0.0;
        for (_, layer, mult) in &workloads {
            cpu += layer.measure_cpu(Framework::PatDnn, opts.threads, opts.reps, 13) * *mult as f64;
            gpu_ms += layer.measure_gpu(Framework::PatDnn, &gpu, 14) * *mult as f64;
        }
        t.push_row(vec![
            patterns.to_string(),
            fmt_pct(after.top5 as f64),
            fmt_ms(cpu),
            format!("{gpu_ms:.1}"),
        ]);
    }
    t
}

/// Measures how long a single pattern-level executor takes (helper shared
/// with tests).
pub fn quick_layer_time(level: OptLevel, opts: &RunOptions) -> f64 {
    let hw = opts.scale_hw(28);
    let geo = Conv2dGeometry::new(32, 32, 3, 3, hw, hw, 1, 1);
    let layer = PrunedLayer::from_geometry("q", geo, 8, 3.6, 77);
    let exec = layer.pattern_exec(level);
    let input = layer.input(78);
    measure(&exec, &input, opts.reps).seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_complete() {
        let t = table1();
        assert_eq!(t.rows.len(), 9);
        // PatDNN supports everything.
        for r in 0..t.rows.len() {
            assert_eq!(t.cell(r, 4), "Y");
        }
    }

    #[test]
    fn table5_matches_paper_structure() {
        let t = table5();
        assert_eq!(t.rows.len(), 6);
        // VGG ImageNet row: 16 layers, 13 conv, ~553 MB.
        assert_eq!(t.cell(0, 3), "16");
        assert_eq!(t.cell(0, 4), "13");
        assert!(t.cell(0, 5).starts_with("553"));
    }

    #[test]
    fn table6_lists_nine_layers() {
        let t = table6();
        assert_eq!(t.rows.len(), 9);
        assert_eq!(t.cell(0, 1), "[64, 3, 3, 3]");
        assert_eq!(t.cell(8, 2), "14x14");
    }
}
