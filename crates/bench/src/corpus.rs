//! Mutation corpus for the plan verifier (`patdnn_serve::verify`).
//!
//! The artifact codec and the verifier together make one promise: **no
//! byte stream reaches an executor unless every semantic invariant
//! holds**. This module attacks that promise mechanically. It compiles
//! a sweep of real artifacts (model family × precision × tuning policy,
//! encoded in every representable format version v1–v5), then derives
//! thousands of deterministic mutants along two tracks:
//!
//! - **Byte track** — single-byte flips (`^0xFF` and `^0x01`) at
//!   evenly-spread offsets plus truncation cuts. Every mutant must end
//!   in exactly one of three states: *decode-rejected* with a typed
//!   [`ArtifactError`]; *verifier-rejected* with a typed
//!   [`patdnn_serve::Violation`]; or *benign* — it decodes, verifies,
//!   and re-encodes **bit-identically** (the flip landed in a value the
//!   format faithfully represents, e.g. a weight). Anything else — a
//!   panic, or a lossy "benign" decode — is a corpus failure.
//! - **Semantic track** — in-memory plan mutations the wire format can
//!   represent but the verifier must refuse: slot-topology forgeries
//!   (in-place writes, use-before-def, out-of-range slots, forged slot
//!   counts), precision and algorithm tag forgeries, invalid exec
//!   configs, FKW index/offset/reorder corruption, broken quantization
//!   scales, and an i32-overflow accumulation depth. Each mutant names
//!   the invariant class expected to catch it; the verifier must report
//!   that class.
//!
//! No mutant is ever executed: the harness stops at decode + verify
//! (plus a re-encode for benign byte mutants), so `executed` must stay
//! zero by construction and the report asserts it. Everything is
//! seed-deterministic — the same corpus reproduces bit-for-bit across
//! runs, so a regression names the exact mutant that slipped through.
//!
//! Run via `repro verify-corpus` or the `verify_corpus` integration
//! test (quick mode).

use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use patdnn_core::prune::pattern_project_network;
use patdnn_nn::calibrate::{calibrate_network, calibration_batch};
use patdnn_nn::models::{resnet_small, small_cnn};
use patdnn_serve::artifact::{
    ArtifactError, ExecConfig, LayerPlan, ModelArtifact, PlanStep, Precision,
};
use patdnn_serve::compile::{compile_network_with, CompileOptions};
use patdnn_serve::quant::quantize_artifact;
use patdnn_serve::tune::TunePolicy;
use patdnn_serve::verify::{verify, VerifyReport};
use patdnn_tensor::rng::Rng;
use patdnn_tensor::Tensor;

/// What the corpus run observed, with per-rejection-class counts.
///
/// Shared by the artifact corpus (this module) and the wire-frame
/// corpus ([`crate::wire_corpus`]); `title` names which one produced
/// the report.
#[derive(Debug, Default)]
pub struct CorpusReport {
    /// Which corpus produced this report (empty means the artifact
    /// corpus, `verify-corpus`).
    pub title: &'static str,
    /// Base artifacts compiled (before encoding-version expansion).
    pub artifacts: usize,
    /// Encoded byte streams the byte track mutated.
    pub encodings: usize,
    /// Total mutants exercised across both tracks.
    pub mutants: usize,
    /// Byte mutants that decoded, verified, and re-encoded
    /// bit-identically (the flip landed in represented data).
    pub benign: usize,
    /// Mutants refused at decode with a typed wire-format error.
    pub decode_rejected: usize,
    /// Mutants that decoded but were refused by the plan verifier.
    pub verify_rejected: usize,
    /// Mutants that reached an executor. Must be zero by construction.
    pub executed: usize,
    /// Panics observed anywhere in the pipeline. Must be zero.
    pub panics: usize,
    /// Rejection class → count. Decode rejections count under
    /// `decode:<variant>`, verifier rejections under the violated
    /// invariant's label (e.g. `verify:payload-invariant`).
    pub per_class: BTreeMap<String, usize>,
    /// Human-readable descriptions of every corpus failure (a panic, an
    /// accepted semantic mutant, a lossy benign decode, ...).
    pub failures: Vec<String>,
}

impl CorpusReport {
    /// Whether the corpus upheld the codec + verifier promise.
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty() && self.panics == 0 && self.executed == 0
    }

    fn class(&mut self, label: String) {
        *self.per_class.entry(label).or_insert(0) += 1;
    }
}

impl fmt::Display for CorpusReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let title = if self.title.is_empty() {
            "verify-corpus"
        } else {
            self.title
        };
        writeln!(
            f,
            "{title}: {} artifacts, {} encodings, {} mutants",
            self.artifacts, self.encodings, self.mutants
        )?;
        writeln!(
            f,
            "  outcomes: {} decode-rejected, {} verifier-rejected, {} benign, \
             {} executed, {} panics",
            self.decode_rejected, self.verify_rejected, self.benign, self.executed, self.panics
        )?;
        writeln!(f, "  rejection classes:")?;
        for (label, count) in &self.per_class {
            writeln!(f, "    {label:<40} {count}")?;
        }
        if self.failures.is_empty() {
            writeln!(f, "  failures: none")?;
        } else {
            writeln!(f, "  failures ({}):", self.failures.len())?;
            for failure in &self.failures {
                writeln!(f, "    {failure}")?;
            }
        }
        Ok(())
    }
}

/// One base artifact plus every format version that can represent it.
struct Base {
    label: String,
    artifact: ModelArtifact,
    /// `(version, bytes)` pairs; versions that cannot represent the
    /// plan (e.g. v1 for a DAG) are simply absent.
    encodings: Vec<(u16, Vec<u8>)>,
}

/// Re-encodes a decoded artifact in the same format version its mutant
/// came from, so the benign-mutant check compares like with like.
fn reencode(artifact: &ModelArtifact, version: u16) -> Result<Vec<u8>, ArtifactError> {
    match version {
        1 => artifact.encode_v1(),
        2 => artifact.encode_v2(),
        3 => artifact.encode_v3(),
        4 => artifact.encode_v4(),
        _ => Ok(artifact.encode()),
    }
}

/// Compiles the corpus's base artifacts: model family × precision ×
/// tuning policy, each expanded into every representable wire version.
fn build_bases(quick: bool, report: &mut CorpusReport) -> Vec<Base> {
    let mut bases = Vec::new();
    let mut push = |label: &str, artifact: ModelArtifact| {
        let mut encodings = vec![(5u16, artifact.encode())];
        for version in 1u16..=4 {
            if let Ok(bytes) = reencode(&artifact, version) {
                encodings.push((version, bytes));
            }
        }
        bases.push(Base {
            label: label.to_string(),
            artifact,
            encodings,
        });
    };

    let pruned_small = |seed: u64| {
        let mut rng = Rng::seed_from(seed);
        let mut net = small_cnn(3, 12, 4, &mut rng);
        pattern_project_network(&mut net, 8, 3.6);
        net
    };

    // Untuned f32 small CNN: chain topology, representable in v1–v5.
    let net = pruned_small(11);
    let plain = compile_network_with(
        "corpus_small",
        &net,
        [3, 12, 12],
        &CompileOptions::default(),
    )
    .expect("corpus base compiles");
    push("small_cnn-f32-off", plain.clone());

    // Estimator-tuned plan: per-step exec configs and (possibly)
    // non-direct algorithm tags, v5-centric.
    let tuned_opts = CompileOptions {
        tune: TunePolicy::Estimate,
        threads: 2,
        ..CompileOptions::default()
    };
    let tuned = compile_network_with("corpus_small_tuned", &net, [3, 12, 12], &tuned_opts)
        .expect("corpus tuned base compiles");
    push("small_cnn-f32-estimate", tuned);

    // INT8-quantized plan: quantized FKW payloads, precision tags.
    let profile =
        calibrate_network(&net, &calibration_batch([3, 12, 12], 2, 13)).expect("calibration");
    let quantized = quantize_artifact(&plain, &profile).expect("corpus quantized base");
    push("small_cnn-int8", quantized);

    // Residual DAG (Add joins, slot reuse) — the slot-topology checks'
    // real target. Skipped in quick mode: it dominates compile time.
    if !quick {
        let mut rng = Rng::seed_from(17);
        let mut net = resnet_small(10, &mut rng);
        pattern_project_network(&mut net, 8, 3.6);
        let dag = compile_network_with(
            "corpus_resnet",
            &net,
            [3, 32, 32],
            &CompileOptions::default(),
        )
        .expect("corpus dag base compiles");
        push("resnet_small-f32-off", dag);
    }

    report.artifacts = bases.len();
    report.encodings = bases.iter().map(|b| b.encodings.len()).sum();
    bases
}

/// Classifies one mutated byte stream. Decode and verify both run under
/// `catch_unwind`: a panic anywhere is a corpus failure, never an abort
/// of the run.
fn classify_bytes(label: &str, version: u16, bytes: &[u8], report: &mut CorpusReport) {
    report.mutants += 1;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        ModelArtifact::decode(bytes).map(|artifact| {
            let verdict = verify(&artifact);
            (artifact, verdict)
        })
    }));
    match outcome {
        Err(_) => {
            report.panics += 1;
            report
                .failures
                .push(format!("{label}: decode/verify panicked"));
        }
        Ok(Err(err)) => {
            report.decode_rejected += 1;
            report.class(format!("decode:{}", error_class(&err)));
        }
        Ok(Ok((_, verdict))) if !verdict.is_ok() => {
            report.verify_rejected += 1;
            report.class(format!("verify:{}", first_invariant(&verdict)));
        }
        Ok(Ok((artifact, _))) => {
            // The flip landed in represented data (a weight, a name
            // byte, ...). That is only acceptable if the decode was
            // lossless: re-encoding must reproduce the mutant exactly.
            match catch_unwind(AssertUnwindSafe(|| reencode(&artifact, version))) {
                Err(_) => {
                    report.panics += 1;
                    report.failures.push(format!("{label}: re-encode panicked"));
                }
                Ok(Ok(bytes2)) if bytes2 == bytes => report.benign += 1,
                Ok(_) => report.failures.push(format!(
                    "{label}: mutant decoded and verified but does not round-trip \
                     bit-identically (silent corruption)"
                )),
            }
        }
    }
}

/// The wire-format rejection class of a decode error.
fn error_class(err: &ArtifactError) -> &'static str {
    match err {
        ArtifactError::BadMagic => "bad-magic",
        ArtifactError::UnsupportedVersion(_) => "unsupported-version",
        ArtifactError::Truncated => "truncated",
        ArtifactError::Malformed(_) => "malformed",
        ArtifactError::Rejected(_) => "rejected",
        ArtifactError::Io(_) => "io",
    }
}

/// The invariant label of a report's first violation.
fn first_invariant(report: &VerifyReport) -> &'static str {
    report
        .violations
        .first()
        .map(|v| v.invariant())
        .unwrap_or("none")
}

/// The byte track: deterministic single-byte flips at evenly-spread
/// offsets, plus truncation cuts.
fn byte_track(bases: &[Base], quick: bool, report: &mut CorpusReport) {
    let flips = if quick { 40 } else { 160 };
    let cuts = if quick { 12 } else { 40 };
    for base in bases {
        for (version, bytes) in &base.encodings {
            let label = format!("{} v{version}", base.label);
            let n = bytes.len();
            for k in 0..flips.min(n) {
                // Evenly spread positions, always covering offset 0
                // (magic) and the final byte.
                let pos = if flips >= n {
                    k
                } else {
                    k * (n - 1) / (flips - 1)
                };
                for mask in [0xFFu8, 0x01] {
                    let mut mutant = bytes.clone();
                    mutant[pos] ^= mask;
                    classify_bytes(
                        &format!("{label} flip@{pos}^{mask:#04x}"),
                        *version,
                        &mutant,
                        report,
                    );
                }
            }
            for k in 0..cuts {
                let cut = k * n / cuts;
                classify_bytes(
                    &format!("{label} cut@{cut}"),
                    *version,
                    &bytes[..cut],
                    report,
                );
            }
        }
    }
}

/// A semantic mutant: a decodable plan the verifier must reject, with
/// the invariant class expected to catch it.
struct Semantic {
    label: String,
    artifact: ModelArtifact,
    expect: &'static str,
}

/// Derives the semantic mutants a base plan supports (a chain without
/// an `Add` join skips the arity forgery, an f32 plan skips the scale
/// forgeries, and so on).
fn semantic_mutants(base: &Base) -> Vec<Semantic> {
    let a = &base.artifact;
    let mut out = Vec::new();
    let mut push = |name: &str, expect: &'static str, mutate: &dyn Fn(&mut ModelArtifact)| {
        let mut m = a.clone();
        mutate(&mut m);
        out.push(Semantic {
            label: format!("{} {name}", base.label),
            artifact: m,
            expect,
        });
    };

    // Plan-level slot forgeries.
    push("slots=0", "no-input-slot", &|m| m.slots = 0);
    push("slots-forged", "slot-count", &|m| {
        m.slots = m.steps.len() + 7;
    });

    // Step-level topology forgeries, applied to the first step whose
    // input is not the network input slot.
    if let Some(i) = a.steps.iter().position(|s| s.inputs.first() != Some(&0)) {
        push("in-place-write", "in-place-write", &|m| {
            m.steps[i].output = m.steps[i].inputs[0];
        });
        push("write-input-slot", "output-slot-range", &|m| {
            m.steps[i].output = 0;
        });
        push("input-out-of-range", "input-slot-range", &|m| {
            m.steps[i].inputs[0] = m.slots + 3;
        });
    }
    if a.steps.len() >= 2 {
        // Step 0 always reads slot 0; redirecting it to the plan's last
        // slot reads a buffer no prior step has written.
        push("use-before-def", "use-before-def", &|m| {
            m.steps[0].inputs[0] = m.slots - 1;
        });
    }
    if let Some(i) = a
        .steps
        .iter()
        .position(|s| matches!(s.op, LayerPlan::Relu | LayerPlan::Flatten))
    {
        push("arity-forged", "arity", &|m| {
            let extra = m.steps[i].inputs[0];
            m.steps[i].inputs.push(extra);
        });
    }
    if let Some(i) = a
        .steps
        .iter()
        .position(|s| matches!(s.op, LayerPlan::Add { .. }) && s.inputs.len() == 2)
    {
        push("add-arity", "arity", &|m| {
            m.steps[i].inputs.pop();
        });
    }

    // Tag forgeries the v5 wire format can carry.
    push("precision-forged", "precision-flow", &|m| {
        m.steps[0].precision = match m.steps[0].precision {
            Precision::F32 => Precision::Int8,
            Precision::Int8 => Precision::F32,
        };
    });
    push("threads-zero", "exec-config", &|m| {
        m.steps[0].exec.threads = 0;
    });
    push("tile-not-pow2", "exec-config", &|m| {
        m.steps[0].exec.tuning.tile_oc = 3;
    });
    if let Some(i) = a
        .steps
        .iter()
        .position(|s| !matches!(s.op, LayerPlan::PatternConv { .. }))
    {
        push("algo-on-non-conv", "algo-eligibility", &|m| {
            m.steps[i].exec.algo = patdnn_compiler::tune::space::ConvAlgo::Winograd;
        });
    }

    // Payload forgeries: FKW structure, quantization scales.
    if let Some(i) = a
        .steps
        .iter()
        .position(|s| matches!(s.op, LayerPlan::PatternConv { .. }))
    {
        push("fkw-index-range", "payload-invariant", &|m| {
            if let LayerPlan::PatternConv { fkw, .. } = &mut m.steps[i].op {
                fkw.index[0] = fkw.in_c as u16;
            }
        });
        push("fkw-offsets-corrupt", "payload-invariant", &|m| {
            if let LayerPlan::PatternConv { fkw, .. } = &mut m.steps[i].op {
                *fkw.offsets.last_mut().expect("offsets nonempty") += 1;
            }
        });
        push("fkw-reorder-range", "payload-invariant", &|m| {
            if let LayerPlan::PatternConv { fkw, .. } = &mut m.steps[i].op {
                fkw.reorder[0] = fkw.out_c as u16;
            }
        });
        push("fkw-weights-truncated", "payload-invariant", &|m| {
            if let LayerPlan::PatternConv { fkw, .. } = &mut m.steps[i].op {
                fkw.weights.pop();
            }
        });
        push("conv-stride-zero", "payload-invariant", &|m| {
            if let LayerPlan::PatternConv { stride, .. } = &mut m.steps[i].op {
                *stride = 0;
            }
        });
    }
    if let Some(i) = a
        .steps
        .iter()
        .position(|s| matches!(s.op, LayerPlan::QuantPatternConv { .. }))
    {
        push("scale-negative", "scale-invalid", &|m| {
            if let LayerPlan::QuantPatternConv { qfkw, .. } = &mut m.steps[i].op {
                qfkw.scales[0] = -1.0;
            }
        });
        push("act-scale-nan", "scale-invalid", &|m| {
            if let LayerPlan::QuantPatternConv { qfkw, .. } = &mut m.steps[i].op {
                qfkw.act_scale = f32::NAN;
            }
        });
        push("algo-on-quant-conv", "algo-eligibility", &|m| {
            m.steps[i].exec.algo = patdnn_compiler::tune::space::ConvAlgo::Im2col;
        });
    }

    // Shape-flow forgery: an FC head whose declared input width
    // disagrees with the dataflow reaching it.
    if let Some(i) = a
        .steps
        .iter()
        .position(|s| matches!(s.op, LayerPlan::Fc { .. }))
    {
        push("fc-width-forged", "shape-flow", &|m| {
            if let LayerPlan::Fc { weights, .. } = &mut m.steps[i].op {
                let out_f = weights.shape()[0];
                let in_f = weights.shape()[1];
                *weights = Tensor::zeros(&[out_f, in_f + 1]);
            }
        });
    }
    if let Some(i) = a
        .steps
        .iter()
        .position(|s| matches!(s.op, LayerPlan::MaxPool { .. }))
    {
        push("pool-window-unfittable", "shape-flow", &|m| {
            if let LayerPlan::MaxPool { kernel, .. } = &mut m.steps[i].op {
                *kernel = 99;
            }
        });
    }

    out
}

/// A hand-built plan whose quantized FC reduction depth overflows an
/// i32 accumulator — compilers never emit one, so it is constructed
/// directly rather than mutated from a base.
fn overflow_depth_artifact() -> ModelArtifact {
    let in_f = 200_000; // 127 * 127 * 200_000 > i32::MAX
    ModelArtifact {
        name: "corpus_overflow".into(),
        input: [in_f, 1, 1],
        slots: 3,
        steps: vec![
            PlanStep {
                op: LayerPlan::Flatten,
                inputs: vec![0],
                output: 1,
                exec: ExecConfig::default(),
                precision: Precision::F32,
            },
            PlanStep {
                op: LayerPlan::QuantFc {
                    name: "head".into(),
                    out_f: 1,
                    in_f,
                    qweights: vec![1; in_f],
                    scales: vec![1.0],
                    act_scale: 1.0,
                    bias: vec![0.0],
                },
                inputs: vec![1],
                output: 2,
                exec: ExecConfig::default(),
                precision: Precision::Int8,
            },
        ],
    }
}

/// The semantic track: every mutant must be verifier-rejected, and the
/// report must name the forged invariant.
fn semantic_track(bases: &[Base], report: &mut CorpusReport) {
    let mut mutants: Vec<Semantic> = bases.iter().flat_map(semantic_mutants).collect();
    mutants.push(Semantic {
        label: "synthetic accumulation-depth".into(),
        artifact: overflow_depth_artifact(),
        expect: "accumulation-overflow",
    });

    for m in mutants {
        report.mutants += 1;
        let verdict = match catch_unwind(AssertUnwindSafe(|| verify(&m.artifact))) {
            Ok(verdict) => verdict,
            Err(_) => {
                report.panics += 1;
                report
                    .failures
                    .push(format!("{}: verify panicked", m.label));
                continue;
            }
        };
        if verdict.is_ok() {
            report
                .failures
                .push(format!("{}: verifier ACCEPTED a forged plan", m.label));
            continue;
        }
        report.verify_rejected += 1;
        report.class(format!("verify:{}", first_invariant(&verdict)));
        if !verdict.violations.iter().any(|v| v.invariant() == m.expect) {
            report.failures.push(format!(
                "{}: rejected, but not for the forged invariant {:?} (got {:?})",
                m.label,
                m.expect,
                verdict
                    .violations
                    .iter()
                    .map(|v| v.invariant())
                    .collect::<Vec<_>>()
            ));
        }
    }
}

/// Runs the full corpus. `quick` shrinks the flip density and drops the
/// residual-DAG base (the integration test uses it; `repro
/// verify-corpus` runs the full sweep unless `--quick`).
pub fn run(quick: bool) -> CorpusReport {
    let mut report = CorpusReport::default();
    let bases = build_bases(quick, &mut report);

    // Sanity: every base must verify clean before it is mutated, or the
    // corpus would "reject" plans that were already broken.
    for base in &bases {
        let verdict = verify(&base.artifact);
        if !verdict.is_ok() {
            report.failures.push(format!(
                "base {} failed verification:\n{verdict}",
                base.label
            ));
        }
    }

    byte_track(&bases, quick, &mut report);
    semantic_track(&bases, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_artifact_is_rejected_for_accumulation() {
        let verdict = verify(&overflow_depth_artifact());
        assert!(verdict
            .violations
            .iter()
            .any(|v| v.invariant() == "accumulation-overflow"));
    }
}
