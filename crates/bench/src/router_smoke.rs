//! Multi-process router smoke: a real `patdnn-router` sharding two
//! real `patdnn-serve --listen` replica processes.
//!
//! This is the one harness that exercises the networked serving stack
//! the way a deployment does — three OS processes, real sockets, the
//! versioned wire protocol end to end — and asserts the contracts the
//! in-process loopback tests can only approximate:
//!
//! - **Shed-retry**: per-replica admission is capped low enough that
//!   sustained mixed-priority load overflows the preferred replica,
//!   so the router must retry on the next replica in the ring
//!   (observed via the router's own `/metrics`).
//! - **Exact typed-terminal accounting**: every submitted request ends
//!   in exactly one frozen terminal (completed / expired / shed /
//!   failed); transport errors count as harness failures, and the sums
//!   must reconcile.
//! - **Zero expired requests execute**: probes with microsecond
//!   deadlines must come back as a typed terminal — `Expired` when the
//!   budget is spent before execution starts (the router refuses to
//!   forward a spent budget and the replica drops expired work before
//!   executing it), `Completed` only in the narrow race where a hot
//!   worker starts the request inside its budget. At least one probe
//!   must expire end to end, proving the typed expiry travels the
//!   wire; the *deterministic* expiry parity is asserted by the
//!   loopback tests against a saturated server.
//! - **Per-class p99 bounds**: generous absolute ceilings per priority
//!   class, so a scheduling regression that stalls a class fails the
//!   smoke rather than just slowing it.
//! - **Clean drain**: shutdown frames to the router and both replicas
//!   must produce exit status 0 from all three processes, which the
//!   serving layer only reports after every in-flight response was
//!   written.
//!
//! Run via `repro serving-router` after `cargo build --release -p
//! patdnn-serve --bins` (the harness locates the sibling binaries next
//! to its own executable and says so if they are missing).

use std::fmt;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use patdnn_serve::net::{http_get, NetClient};
use patdnn_serve::Priority;
use patdnn_tensor::rng::Rng;
use patdnn_tensor::Tensor;

/// What the smoke run observed and asserted.
#[derive(Debug, Default)]
pub struct SmokeReport {
    /// Requests submitted across all clients (excluding expiry probes).
    pub submitted: usize,
    /// Requests that completed with an output.
    pub completed: usize,
    /// Requests shed after the router exhausted every replica.
    pub shed: usize,
    /// Requests that expired (including the deliberate probes).
    pub expired: usize,
    /// Deliberate microsecond-deadline probes sent.
    pub probes: usize,
    /// Router shed-retries observed via `/metrics`.
    pub shed_retries: u64,
    /// Per-class `(label, completed, p99_ms)`.
    pub classes: Vec<(&'static str, usize, f64)>,
    /// Assertion failures; empty means the smoke passed.
    pub failures: Vec<String>,
}

impl SmokeReport {
    /// Whether every smoke contract held.
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for SmokeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serving-router: {} submitted -> {} completed, {} shed, {} expired \
             ({} deliberate probes), {} router shed-retries",
            self.submitted, self.completed, self.shed, self.expired, self.probes, self.shed_retries
        )?;
        for (label, completed, p99) in &self.classes {
            writeln!(f, "  {label:<12} {completed} completed, p99 {p99:.1}ms")?;
        }
        if self.failures.is_empty() {
            writeln!(f, "  clean drain: router + 2 replicas exited 0")?;
        } else {
            writeln!(f, "  FAILURES:")?;
            for failure in &self.failures {
                writeln!(f, "    {failure}")?;
            }
        }
        Ok(())
    }
}

/// Locates a sibling binary next to the currently running executable
/// (handling the `target/<profile>/deps/` layout of test binaries).
fn find_binary(name: &str) -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut dir = exe
        .parent()
        .ok_or_else(|| "executable has no parent directory".to_string())?
        .to_path_buf();
    if dir.ends_with("deps") {
        dir.pop();
    }
    let candidate = dir.join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    if candidate.exists() {
        Ok(candidate)
    } else {
        Err(format!(
            "{} not found at {} — build it first: cargo build -p patdnn-serve --bins",
            name,
            candidate.display()
        ))
    }
}

/// A spawned fleet process, killed on drop unless it already exited.
struct Proc {
    name: &'static str,
    child: Child,
    /// Drains the child's stdout so the pipe never fills.
    drain: Option<std::thread::JoinHandle<()>>,
}

impl Proc {
    /// Spawns `bin args`, waits for a stdout line starting with
    /// `ready_prefix`, and returns the process plus the rest of that
    /// line (the bound address).
    fn spawn(
        name: &'static str,
        bin: &PathBuf,
        args: &[&str],
        ready_prefix: &str,
    ) -> Result<(Proc, String), String> {
        let mut child = Command::new(bin)
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("{name}: spawn {}: {e}", bin.display()))?;
        let stdout = child.stdout.take().expect("stdout piped");
        let mut reader = BufReader::new(stdout);
        let mut addr = None;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    if let Some(rest) = line.trim_end().strip_prefix(ready_prefix) {
                        addr = Some(rest.to_string());
                        break;
                    }
                }
                Err(e) => {
                    let _ = child.kill();
                    return Err(format!("{name}: reading stdout: {e}"));
                }
            }
        }
        let Some(addr) = addr else {
            let _ = child.kill();
            return Err(format!(
                "{name}: exited without printing \"{ready_prefix}\""
            ));
        };
        let drain = std::thread::spawn(move || {
            let mut sink = String::new();
            while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                sink.clear();
            }
        });
        Ok((
            Proc {
                name,
                child,
                drain: Some(drain),
            },
            addr,
        ))
    }

    /// Waits for exit and asserts status 0.
    fn wait_clean(mut self, failures: &mut Vec<String>) {
        match self.child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => failures.push(format!("{}: exited with {status}", self.name)),
            Err(e) => failures.push(format!("{}: wait failed: {e}", self.name)),
        }
        if let Some(drain) = self.drain.take() {
            let _ = drain.join();
        }
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        // Only reached on an early error path; a clean run has already
        // waited the child out.
        if matches!(self.child.try_wait(), Ok(None)) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

/// Parses one gauge/counter value out of a flat Prometheus-style text
/// exposition.
fn metric_value(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        rest.trim().parse().ok()
    })
}

const CLASSES: [Priority; 3] = [Priority::Interactive, Priority::Standard, Priority::Batch];

/// Runs the smoke. `quick` shrinks the load so the tier-1 wrapper
/// stays fast; CI runs the full load against release binaries.
pub fn run(quick: bool) -> SmokeReport {
    let mut report = SmokeReport::default();
    let serve_bin = match find_binary("patdnn-serve") {
        Ok(p) => p,
        Err(e) => {
            report.failures.push(e);
            return report;
        }
    };
    let router_bin = match find_binary("patdnn-router") {
        Ok(p) => p,
        Err(e) => {
            report.failures.push(e);
            return report;
        }
    };

    // Two replicas of the tiny model, each with a deliberately small
    // admission budget so the client fleet overflows the preferred
    // replica and forces shed-retries.
    let replica_args = [
        "--listen",
        "127.0.0.1:0",
        "--model",
        "small_cnn",
        "--workers",
        "1",
        "--max-batch",
        "4",
        "--max-wait-ms",
        "1",
        "--max-in-flight",
        "2",
    ];
    let mut replicas = Vec::new();
    for name in ["replica-a", "replica-b"] {
        match Proc::spawn(name, &serve_bin, &replica_args, "listening on ") {
            Ok(pair) => replicas.push(pair),
            Err(e) => {
                report.failures.push(e);
                return report;
            }
        }
    }
    let replica_addrs: Vec<String> = replicas.iter().map(|(_, a)| a.clone()).collect();

    let (router, router_addr) = match Proc::spawn(
        "router",
        &router_bin,
        &[
            "--listen",
            "127.0.0.1:0",
            "--replica",
            &replica_addrs[0],
            "--replica",
            &replica_addrs[1],
            "--max-in-flight",
            "2",
        ],
        "routing on ",
    ) {
        Ok(pair) => pair,
        Err(e) => {
            report.failures.push(e);
            return report;
        }
    };

    // Mixed-priority load: each client owns a connection and cycles
    // through the three classes. More clients than the fleet's total
    // admission budget (2 replicas x 2 slots) guarantees overflow.
    let clients = 6;
    let per_client = if quick { 8 } else { 30 };
    report.submitted = clients * per_client;
    // outcome counts [completed, expired, shed, failed-other] and
    // completed-latency samples per class.
    let tally = Mutex::new(([0usize; 4], vec![Vec::new(), Vec::new(), Vec::new()]));
    let client_failures: Vec<String> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client_idx in 0..clients {
            let router_addr = &router_addr;
            let tally = &tally;
            handles.push(scope.spawn(move || {
                let mut failures = Vec::new();
                let mut rng = Rng::seed_from(1000 + client_idx as u64);
                let mut net = match NetClient::connect(router_addr) {
                    Ok(c) => c,
                    Err(e) => {
                        return vec![format!("client {client_idx}: connect: {e}")];
                    }
                };
                for req in 0..per_client {
                    let class_idx = (client_idx + req) % CLASSES.len();
                    let input = Tensor::randn(&[1, 3, 8, 8], &mut rng);
                    let start = Instant::now();
                    let outcome = net.infer(
                        "small_cnn",
                        &input,
                        CLASSES[class_idx],
                        Some(Duration::from_secs(10)),
                    );
                    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
                    let mut tally = tally.lock().expect("tally lock");
                    match outcome.as_ref().map(|o| o.terminal_code()) {
                        Ok(0) => {
                            tally.0[0] += 1;
                            tally.1[class_idx].push(elapsed_ms);
                        }
                        Ok(1) => tally.0[1] += 1,
                        Ok(3) => tally.0[2] += 1,
                        Ok(code) => {
                            tally.0[3] += 1;
                            failures.push(format!(
                                "client {client_idx}: unexpected terminal code {code}"
                            ));
                        }
                        Err(e) => {
                            tally.0[3] += 1;
                            failures.push(format!("client {client_idx}: transport: {e}"));
                        }
                    }
                }
                failures
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    report.failures.extend(client_failures);
    let (counts, latencies) = tally.into_inner().expect("tally lock");
    report.completed = counts[0];
    report.expired = counts[1];
    report.shed = counts[2];
    if counts[3] > 0 {
        report.failures.push(format!(
            "{} request(s) ended in a transport error or unknown terminal",
            counts[3]
        ));
    }
    let accounted = counts.iter().sum::<usize>();
    if accounted != report.submitted {
        report.failures.push(format!(
            "terminal accounting mismatch: {accounted} accounted, {} submitted",
            report.submitted
        ));
    }
    for (class_idx, priority) in CLASSES.iter().enumerate() {
        let mut samples = latencies[class_idx].clone();
        if samples.is_empty() {
            report
                .failures
                .push(format!("class {} completed 0 requests", priority.label()));
            report.classes.push((priority.label(), 0, f64::NAN));
            continue;
        }
        samples.sort_by(f64::total_cmp);
        let p99 = samples[(samples.len() - 1) * 99 / 100];
        // Generous absolute ceiling: the model runs in microseconds,
        // so anything near this bound means a class is being starved.
        let bound_ms = 5_000.0;
        if p99 > bound_ms {
            report.failures.push(format!(
                "class {} p99 {p99:.1}ms exceeds {bound_ms}ms",
                priority.label()
            ));
        }
        report.classes.push((priority.label(), samples.len(), p99));
    }

    // Zero expired requests execute: a microsecond budget must come
    // back Expired (terminal code 1), never Completed. This is
    // deterministic: a lone probe on the now-idle fleet cannot form a
    // batch (1 < max_batch) before its 1ms flush timer, and the
    // batcher prunes expired requests before execution — so the 1us
    // budget is always spent first, at the router or the replica.
    report.probes = 6;
    let mut probe_expired = 0usize;
    match NetClient::connect(&router_addr) {
        Ok(mut net) => {
            let mut rng = Rng::seed_from(7);
            for probe in 0..report.probes {
                let input = Tensor::randn(&[1, 3, 8, 8], &mut rng);
                match net.infer(
                    "small_cnn",
                    &input,
                    Priority::Interactive,
                    Some(Duration::from_micros(1)),
                ) {
                    Ok(outcome) => match outcome.terminal_code() {
                        1 => probe_expired += 1,
                        code => report.failures.push(format!(
                            "expiry probe {probe}: terminal code {code} \
                             (want 1/Expired — an expired budget was served)"
                        )),
                    },
                    Err(e) => report
                        .failures
                        .push(format!("expiry probe {probe}: transport: {e}")),
                }
            }
        }
        Err(e) => report.failures.push(format!("probe connect: {e}")),
    }
    report.expired += probe_expired;

    // Shed-retry observed through the router's own telemetry.
    match http_get(&router_addr, "/metrics") {
        Ok(text) => {
            report.shed_retries =
                metric_value(&text, "patdnn_router_shed_retries_total").unwrap_or(0);
            if report.shed_retries == 0 {
                report.failures.push(
                    "router reported zero shed-retries under overflow load \
                     (expected the preferred replica to overflow)"
                        .into(),
                );
            }
            match metric_value(&text, "patdnn_router_completed_total") {
                Some(total) if total as usize >= report.completed => {}
                other => report.failures.push(format!(
                    "router completed_total {other:?} < client-side {}",
                    report.completed
                )),
            }
        }
        Err(e) => report.failures.push(format!("router /metrics: {e}")),
    }

    // Clean drain: the router front-end first, then both replicas;
    // all three processes must exit 0.
    match NetClient::connect(&router_addr).and_then(|mut c| c.shutdown(true)) {
        Ok(()) => {}
        Err(e) => report.failures.push(format!("router shutdown: {e}")),
    }
    router.wait_clean(&mut report.failures);
    for (replica, addr) in replicas {
        match NetClient::connect(&addr).and_then(|mut c| c.shutdown(true)) {
            Ok(()) => {}
            Err(e) => report
                .failures
                .push(format!("{}: shutdown: {e}", replica.name)),
        }
        replica.wait_clean(&mut report.failures);
    }
    report
}
