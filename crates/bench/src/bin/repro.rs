//! `repro` — regenerates every table and figure of the PatDNN paper.
//!
//! Usage:
//!
//! ```text
//! repro <experiment>... [--quick] [--reps N] [--threads N] [--json FILE]
//! experiment: table1..table7, fig12..fig18, serving, serving-resnet,
//!             serving-tuned, serving-quant, serving-slo,
//!             serving-profile, serving-kernels, verify-corpus,
//!             wire-corpus, serving-router, tables, figures, all
//! ```
//!
//! `serving-router` launches real `patdnn-serve`/`patdnn-router`
//! processes, so build the serve binaries first (`cargo build -p
//! patdnn-serve --bins`, same profile). It is not part of `all`.
//!
//! `--json FILE` additionally writes a machine-readable report for the
//! experiments that produce one (`serving-quant`, `serving-slo`,
//! `serving-profile`, and `serving-kernels`), so CI can upload the perf
//! trajectory as a workflow artifact.

use patdnn_bench::{figures, tables, RunOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = RunOptions::default();
    let mut json_path: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                opts = RunOptions {
                    quick: true,
                    reps: 1,
                    ..opts
                }
            }
            "--reps" => {
                i += 1;
                opts.reps = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a number"));
            }
            "--threads" => {
                i += 1;
                opts.threads = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--json needs a file path")),
                );
            }
            other if other.starts_with("--") => die(&format!("unknown flag {other}")),
            other => selected.push(other.to_owned()),
        }
        i += 1;
    }
    if selected.is_empty() {
        selected.push("all".into());
    }

    let mut expanded: Vec<&str> = Vec::new();
    for s in &selected {
        match s.as_str() {
            "all" => expanded.extend([
                "table1",
                "table2",
                "table3",
                "table4",
                "table5",
                "table6",
                "table7",
                "fig12",
                "fig13",
                "fig14",
                "fig15",
                "fig16",
                "fig17",
                "fig18",
                "serving",
                "serving-resnet",
                "serving-tuned",
                "serving-quant",
                "serving-slo",
                "serving-profile",
                "serving-kernels",
                "verify-corpus",
                "wire-corpus",
            ]),
            "tables" => expanded.extend([
                "table1", "table2", "table3", "table4", "table5", "table6", "table7",
            ]),
            "figures" => expanded.extend([
                "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
            ]),
            other => expanded.push(other),
        }
    }

    println!(
        "PatDNN reproduction harness (reps={}, threads={}, quick={})",
        opts.reps, opts.threads, opts.quick
    );
    println!();
    for exp in expanded {
        let start = std::time::Instant::now();
        match exp {
            "table1" => println!("{}", tables::table1()),
            "table2" => println!("{}", tables::table2(&opts)),
            "table3" => println!("{}", tables::table3(&opts)),
            "table4" => println!("{}", tables::table4(&opts)),
            "table5" => println!("{}", tables::table5()),
            "table6" => println!("{}", tables::table6()),
            "table7" => println!("{}", tables::table7(&opts)),
            "fig12" => print_all(figures::fig12(&opts)),
            "fig13" => print_all(figures::fig13(&opts)),
            "fig14" => print_all(figures::fig14(&opts)),
            "fig15" => print_all(figures::fig15(&opts)),
            "fig16" => print_all(figures::fig16(&opts)),
            "fig17" => print_all(figures::fig17(&opts)),
            "fig18" => print_all(figures::fig18(&opts)),
            "serving" => print_all(patdnn_bench::serving::serving(&opts)),
            "serving-resnet" => {
                println!("{}", patdnn_bench::serving::resnet_serving(&opts));
            }
            "serving-tuned" => {
                println!("{}", patdnn_bench::serving::tuned_serving(&opts));
            }
            "serving-quant" => {
                let (table, json) = patdnn_bench::serving::quant_serving_report(&opts);
                println!("{table}");
                write_json(&json_path, &json);
            }
            "serving-slo" => {
                let (table, json) = patdnn_bench::serving::slo_serving_report(&opts);
                println!("{table}");
                write_json(&json_path, &json);
            }
            "serving-profile" => {
                let (tables, json) = patdnn_bench::serving::serving_profile_report(&opts);
                print_all(tables);
                write_json(&json_path, &json);
            }
            "serving-kernels" => {
                let (table, json) = patdnn_bench::serving::serving_kernels_report(&opts);
                println!("{table}");
                write_json(&json_path, &json);
            }
            "verify-corpus" => {
                let report = patdnn_bench::corpus::run(opts.quick);
                print!("{report}");
                if !report.is_ok() {
                    die("verify-corpus found rejection-harness failures (see above)");
                }
            }
            "wire-corpus" => {
                let report = patdnn_bench::wire_corpus::run(opts.quick);
                print!("{report}");
                if !report.is_ok() {
                    die("wire-corpus found codec failures (see above)");
                }
            }
            "serving-router" => {
                let report = patdnn_bench::router_smoke::run(opts.quick);
                print!("{report}");
                if !report.is_ok() {
                    die("serving-router smoke failed (see above)");
                }
            }
            other => die(&format!("unknown experiment {other}")),
        }
        eprintln!("[{exp} took {:.1}s]", start.elapsed().as_secs_f64());
        println!();
    }
}

fn write_json(path: &Option<String>, json: &str) {
    if let Some(path) = path {
        std::fs::write(path, json).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        eprintln!("[json report written to {path}]");
    }
}

fn print_all(tables: Vec<patdnn_bench::report::Table>) {
    for t in tables {
        println!("{t}");
        println!();
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: repro <table1..table7|fig12..fig18|serving|serving-resnet|serving-tuned|\
         serving-quant|serving-slo|serving-profile|serving-kernels|verify-corpus|\
         wire-corpus|serving-router|tables|figures|all> \
         [--quick] [--reps N] [--threads N] [--json FILE]"
    );
    std::process::exit(2);
}
