//! # patdnn-bench
//!
//! The reproduction harness: regenerates every table and figure of the
//! PatDNN paper's evaluation (§6) on the workspace's own substrate.
//!
//! - [`workloads`] — per-layer and per-model workload builders (random
//!   weights pruned to the paper's rates; the execution-time figures are
//!   weight-value independent).
//! - [`report`] — plain-text table formatting shared by the `repro`
//!   binary and the integration tests.
//! - [`tables`] — Tables 1-7.
//! - [`figures`] — Figures 12-18.
//! - [`serving`] — beyond the paper: compiled-engine batch sweeps and
//!   dynamic-batching server throughput (`repro serving`).
//! - [`corpus`] — the plan-verifier mutation corpus (`repro
//!   verify-corpus`): byte-flip, truncation, and semantic-forgery
//!   mutants over real artifacts, each of which must be rejected with a
//!   typed error (or decode bit-identically) without panicking.
//! - [`wire_corpus`] — the same mutation discipline applied to the
//!   network wire protocol (`repro wire-corpus`): mutated handshakes
//!   and frames must be refused with a typed [`patdnn_serve::wire`]
//!   error or decode bit-identically, never panic.
//! - [`router_smoke`] — the multi-process router smoke (`repro
//!   serving-router`): a real `patdnn-router` sharding two
//!   `patdnn-serve --listen` replicas, asserting shed-retry, exact
//!   typed-terminal accounting, per-class p99 bounds, and a clean
//!   drain.
//!
//! Run `cargo run -p patdnn-bench --release --bin repro -- all` to
//! regenerate everything; see `EXPERIMENTS.md` for the paper-vs-measured
//! record.

pub mod corpus;
pub mod figures;
pub mod report;
pub mod router_smoke;
pub mod serving;
pub mod tables;
pub mod wire_corpus;
pub mod workloads;

/// Global options for reproduction runs.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Timing repetitions per measurement (after one warm-up).
    pub reps: usize,
    /// Shrink spatial sizes 4× for quick smoke runs.
    pub quick: bool,
    /// CPU threads for parallel runs (the paper uses 8).
    pub threads: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            reps: 2,
            quick: false,
            threads: 8,
        }
    }
}

impl RunOptions {
    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        RunOptions {
            reps: 1,
            quick: true,
            threads: 4,
        }
    }

    /// Applies the quick spatial scaling to an input size.
    pub fn scale_hw(&self, hw: usize) -> usize {
        if self.quick {
            (hw / 4).max(7)
        } else {
            hw
        }
    }
}
