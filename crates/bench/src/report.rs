//! Plain-text table formatting for reproduction reports.

use std::fmt;

/// A titled, column-aligned text table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (e.g. `Table 3: ...`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Cell at `(row, col)`.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats seconds as milliseconds with sensible precision.
pub fn fmt_ms(seconds: f64) -> String {
    let ms = seconds * 1e3;
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 10.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.2}")
    }
}

/// Formats a speedup factor.
pub fn fmt_speedup(factor: f64) -> String {
    format!("{factor:.1}x")
}

/// Formats a percentage.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["longer".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("| name   | value |"));
        assert!(s.contains("| longer | 22    |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_is_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(0.2424), "242");
        assert_eq!(fmt_ms(0.0189), "18.9");
        assert_eq!(fmt_ms(0.00151), "1.51");
        assert_eq!(fmt_speedup(44.53), "44.5x");
        assert_eq!(fmt_pct(0.916), "91.6%");
    }
}
