//! Workload builders for the reproduction experiments.

use patdnn_compiler::fkr::{filter_kernel_reorder, FilterOrder};
use patdnn_compiler::fkw::FkwLayer;
use patdnn_compiler::tune::space::TuningConfig;
use patdnn_core::pattern_set::PatternSet;
use patdnn_core::project::{alpha_for_rate, prune_layer, LayerPruning};
use patdnn_nn::models::{ConvSpec, ModelSpec};
use patdnn_runtime::dense::{Im2colConv, NaiveConv, TiledConv, WinogradConv};
use patdnn_runtime::executor::{measure, ConvExecutor};
use patdnn_runtime::gpu::{simulate_dense_conv, simulate_pattern_conv, GpuModel};
use patdnn_runtime::parallel::{ParallelDense, ParallelPattern, Schedule};
use patdnn_runtime::pattern_exec::{OptLevel, PatternConv};
use patdnn_tensor::rng::Rng;
use patdnn_tensor::{Conv2dGeometry, Tensor};

/// The frameworks compared in Figure 12 (and the paper throughout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Framework {
    /// TFLite-like: naive dense loop nest.
    TfliteLike,
    /// TVM-like: im2col + GEMM with a fixed default schedule.
    TvmLike,
    /// MNN-like: Winograd dense.
    MnnLike,
    /// PatDNN's own optimized dense kernel (Figure 17 baseline).
    PatDnnDense,
    /// PatDNN with CSR sparse storage (the negative result of §6.2).
    PatDnnCsr,
    /// Full PatDNN: pattern pruning + FKW + all compiler optimizations.
    PatDnn,
}

impl Framework {
    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            Framework::TfliteLike => "TFLite",
            Framework::TvmLike => "TVM",
            Framework::MnnLike => "MNN",
            Framework::PatDnnDense => "PatDNN-dense",
            Framework::PatDnnCsr => "PatDNN-CSR",
            Framework::PatDnn => "PatDNN",
        }
    }

    /// The frameworks of Figure 12, in its plotting order.
    pub fn figure12() -> [Framework; 4] {
        [
            Framework::TfliteLike,
            Framework::TvmLike,
            Framework::MnnLike,
            Framework::PatDnn,
        ]
    }
}

/// A fully-prepared pruned conv layer: weights, pruning record, FKW.
pub struct PrunedLayer {
    /// Layer name.
    pub name: String,
    /// Execution geometry.
    pub geo: Conv2dGeometry,
    /// Pruned dense weights (zeros outside patterns / pruned kernels).
    pub weights: Tensor,
    /// Unpruned copy of the weights for dense baselines.
    pub dense_weights: Tensor,
    /// Bias.
    pub bias: Vec<f32>,
    /// Pruning record.
    pub lp: LayerPruning,
    /// Filter order after FKR.
    pub order: FilterOrder,
    /// FKW storage.
    pub fkw: FkwLayer,
    /// The pattern set used.
    pub set: PatternSet,
}

impl PrunedLayer {
    /// Builds a pruned layer from a spec with random weights, `patterns`
    /// candidate patterns and the given connectivity rate.
    pub fn build(spec: &ConvSpec, patterns: usize, conn_rate: f32, seed: u64) -> Self {
        let geo = spec.geometry();
        Self::from_geometry(&spec.name, geo, patterns, conn_rate, seed)
    }

    /// Builds a pruned layer directly from a geometry.
    pub fn from_geometry(
        name: &str,
        geo: Conv2dGeometry,
        patterns: usize,
        conn_rate: f32,
        seed: u64,
    ) -> Self {
        let mut rng = Rng::seed_from(seed);
        let dense_weights = Tensor::randn_std(
            &[
                geo.out_channels,
                geo.in_channels,
                geo.kernel_h,
                geo.kernel_w,
            ],
            (2.0 / (geo.in_channels * geo.kernel_h * geo.kernel_w) as f32).sqrt(),
            &mut rng,
        );
        let bias: Vec<f32> = (0..geo.out_channels)
            .map(|_| rng.uniform(-0.1, 0.1))
            .collect();
        let set = if geo.kernel_h == 3 {
            PatternSet::harvest(&[&dense_weights], patterns)
        } else {
            PatternSet::standard(patterns)
        };
        let mut weights = dense_weights.clone();
        let alpha = alpha_for_rate(geo.out_channels * geo.in_channels, conn_rate);
        let lp = prune_layer(name, &mut weights, &set, alpha);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&weights, &lp, &set, &order);
        PrunedLayer {
            name: name.to_owned(),
            geo,
            weights,
            dense_weights,
            bias,
            lp,
            order,
            fkw,
            set,
        }
    }

    /// Builds a *connectivity-only* pruned layer (kernels stay dense
    /// inside), for the Table 2 scheme comparison.
    pub fn from_geometry_connectivity_only(
        name: &str,
        geo: Conv2dGeometry,
        conn_rate: f32,
        seed: u64,
    ) -> Self {
        let mut rng = Rng::seed_from(seed);
        let dense_weights = Tensor::randn_std(
            &[
                geo.out_channels,
                geo.in_channels,
                geo.kernel_h,
                geo.kernel_w,
            ],
            (2.0 / (geo.in_channels * geo.kernel_h * geo.kernel_w) as f32).sqrt(),
            &mut rng,
        );
        let bias: Vec<f32> = (0..geo.out_channels)
            .map(|_| rng.uniform(-0.1, 0.1))
            .collect();
        let set = PatternSet::standard(8);
        let mut weights = dense_weights.clone();
        let alpha = alpha_for_rate(geo.out_channels * geo.in_channels, conn_rate);
        let lp = patdnn_core::project::prune_layer_connectivity_only(name, &mut weights, alpha);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&weights, &lp, &set, &order);
        PrunedLayer {
            name: name.to_owned(),
            geo,
            weights,
            dense_weights,
            bias,
            lp,
            order,
            fkw,
            set,
        }
    }

    /// A random input for this layer.
    pub fn input(&self, seed: u64) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        Tensor::randn(
            &[1, self.geo.in_channels, self.geo.in_h, self.geo.in_w],
            &mut rng,
        )
    }

    /// A pattern executor at the given level.
    pub fn pattern_exec(&self, level: OptLevel) -> PatternConv {
        PatternConv::new(
            self.geo,
            self.fkw.clone(),
            Some(self.bias.clone()),
            level,
            TuningConfig::tuned_default(),
        )
    }

    /// A single-threaded executor for the given framework.
    pub fn framework_exec(&self, fw: Framework) -> Box<dyn ConvExecutor + Sync> {
        match fw {
            Framework::TfliteLike => Box::new(NaiveConv::new(
                self.geo,
                self.dense_weights.clone(),
                Some(self.bias.clone()),
            )),
            Framework::TvmLike => Box::new(Im2colConv::new(
                self.geo,
                self.dense_weights.clone(),
                Some(self.bias.clone()),
            )),
            Framework::MnnLike => Box::new(WinogradConv::new(
                self.geo,
                self.dense_weights.clone(),
                Some(self.bias.clone()),
            )),
            Framework::PatDnnDense => Box::new(TiledConv::new(
                self.geo,
                self.dense_weights.clone(),
                Some(self.bias.clone()),
            )),
            Framework::PatDnnCsr => Box::new(patdnn_runtime::sparse_csr::CsrConv::new(
                self.geo,
                patdnn_compiler::csr::CsrLayer::from_dense(&self.weights),
                Some(self.bias.clone()),
            )),
            Framework::PatDnn => Box::new(self.pattern_exec(OptLevel::Full)),
        }
    }

    /// Measures one framework on this layer, multi-threaded over output
    /// channels (the paper's 8-thread CPU configuration).
    pub fn measure_cpu(&self, fw: Framework, threads: usize, reps: usize, seed: u64) -> f64 {
        let input = self.input(seed);
        match fw {
            Framework::PatDnn => {
                let par = ParallelPattern::new(
                    self.pattern_exec(OptLevel::Full),
                    threads,
                    Schedule::Balanced,
                );
                measure(&par, &input, reps).seconds
            }
            Framework::PatDnnCsr => {
                // CSR defeats balanced splitting; contiguous per-filter split.
                let exec = self.framework_exec(fw);
                measure(exec.as_ref(), &input, reps).seconds
            }
            _ => {
                let geo = self.geo;
                let weights = &self.dense_weights;
                let bias = &self.bias;
                let fsize = geo.in_channels * geo.kernel_h * geo.kernel_w;
                let par = ParallelDense::new(geo, threads, |sub_geo, range| {
                    let wslice = weights.data()[range.start * fsize..range.end * fsize].to_vec();
                    let sub_w = Tensor::from_vec(
                        &[
                            sub_geo.out_channels,
                            geo.in_channels,
                            geo.kernel_h,
                            geo.kernel_w,
                        ],
                        wslice,
                    )
                    .expect("weight subslice");
                    let sub_b = bias[range].to_vec();
                    match fw {
                        Framework::TfliteLike => {
                            DenseKind::Naive(NaiveConv::new(sub_geo, sub_w, Some(sub_b)))
                        }
                        Framework::TvmLike => {
                            DenseKind::Im2col(Im2colConv::new(sub_geo, sub_w, Some(sub_b)))
                        }
                        Framework::MnnLike => {
                            DenseKind::Winograd(WinogradConv::new(sub_geo, sub_w, Some(sub_b)))
                        }
                        _ => DenseKind::Tiled(TiledConv::new(sub_geo, sub_w, Some(sub_b))),
                    }
                });
                measure(&par, &input, reps).seconds
            }
        }
    }

    /// Simulated GPU milliseconds for one framework on this layer.
    pub fn measure_gpu(&self, fw: Framework, model: &GpuModel, seed: u64) -> f64 {
        let input = self.input(seed);
        match fw {
            Framework::PatDnn => {
                let exec = self.pattern_exec(OptLevel::Full);
                simulate_pattern_conv(model, &exec, &input).millis
            }
            Framework::PatDnnCsr => {
                // CSR on GPU: pattern compute without any of the
                // divergence/load wins — model as NoOpt level.
                let exec = self.pattern_exec(OptLevel::NoOpt);
                simulate_pattern_conv(model, &exec, &input).millis
            }
            _ => {
                let winograd = fw == Framework::MnnLike;
                let out =
                    Tensor::zeros(&[1, self.geo.out_channels, self.geo.out_h, self.geo.out_w]);
                let mut r = simulate_dense_conv(model, &self.geo, winograd, out);
                // The naive framework forgoes tiling: charge extra loads.
                if fw == Framework::TfliteLike {
                    r.millis *= 1.8;
                }
                if fw == Framework::TvmLike {
                    r.millis *= 1.25;
                }
                r.millis
            }
        }
    }
}

/// Dispatch enum so [`ParallelDense`] can hold any dense kind.
pub enum DenseKind {
    /// Naive loop nest.
    Naive(NaiveConv),
    /// im2col + GEMM.
    Im2col(Im2colConv),
    /// Winograd.
    Winograd(WinogradConv),
    /// Tiled.
    Tiled(TiledConv),
}

impl ConvExecutor for DenseKind {
    fn name(&self) -> &str {
        match self {
            DenseKind::Naive(e) => e.name(),
            DenseKind::Im2col(e) => e.name(),
            DenseKind::Winograd(e) => e.name(),
            DenseKind::Tiled(e) => e.name(),
        }
    }

    fn geometry(&self) -> &Conv2dGeometry {
        match self {
            DenseKind::Naive(e) => e.geometry(),
            DenseKind::Im2col(e) => e.geometry(),
            DenseKind::Winograd(e) => e.geometry(),
            DenseKind::Tiled(e) => e.geometry(),
        }
    }

    fn run(&self, input: &Tensor) -> Tensor {
        match self {
            DenseKind::Naive(e) => e.run(input),
            DenseKind::Im2col(e) => e.run(input),
            DenseKind::Winograd(e) => e.run(input),
            DenseKind::Tiled(e) => e.run(input),
        }
    }
}

/// The unique VGG-16 conv layers (Table 6) as pruned workloads, with
/// multiplicities, optionally spatially scaled for quick runs.
pub fn vgg_unique_workloads(
    patterns: usize,
    conn_rate: f32,
    scale_hw: impl Fn(usize) -> usize,
) -> Vec<(String, PrunedLayer, usize)> {
    patdnn_nn::models::vgg_unique_layers()
        .into_iter()
        .enumerate()
        .map(|(i, (lname, spec, mult))| {
            let hw = scale_hw(spec.in_h);
            let geo = Conv2dGeometry::new(
                spec.out_c,
                spec.in_c,
                spec.kernel,
                spec.kernel,
                hw,
                hw,
                spec.stride,
                1,
            );
            (
                lname.clone(),
                PrunedLayer::from_geometry(&lname, geo, patterns, conn_rate, 1000 + i as u64),
                mult,
            )
        })
        .collect()
}

/// Sums a framework's per-layer times over a whole model spec using the
/// unique-layer × multiplicity decomposition.
pub fn model_cpu_time(
    spec: &ModelSpec,
    fw: Framework,
    patterns: usize,
    conn_rate: f32,
    threads: usize,
    reps: usize,
    scale_hw: impl Fn(usize) -> usize,
) -> f64 {
    let mut total = 0.0;
    for (i, (conv, mult)) in spec.unique_convs().into_iter().enumerate() {
        let hw = scale_hw(conv.in_h);
        let in_c = if conv.depthwise { 1 } else { conv.in_c };
        let geo = Conv2dGeometry::new(
            conv.out_c,
            in_c,
            conv.kernel,
            conv.kernel,
            hw.max(conv.kernel),
            hw.max(conv.kernel),
            conv.stride,
            conv.pad.min(conv.kernel / 2),
        );
        let layer =
            PrunedLayer::from_geometry(&conv.name, geo, patterns, conn_rate, 2000 + i as u64);
        total += layer.measure_cpu(fw, threads, reps, 3000 + i as u64) * mult as f64;
    }
    total
}

/// Sums a framework's per-layer simulated GPU times over a model spec.
pub fn model_gpu_time(
    spec: &ModelSpec,
    fw: Framework,
    patterns: usize,
    conn_rate: f32,
    model: &GpuModel,
    scale_hw: impl Fn(usize) -> usize,
) -> f64 {
    let mut total = 0.0;
    for (i, (conv, mult)) in spec.unique_convs().into_iter().enumerate() {
        let hw = scale_hw(conv.in_h);
        let in_c = if conv.depthwise { 1 } else { conv.in_c };
        let geo = Conv2dGeometry::new(
            conv.out_c,
            in_c,
            conv.kernel,
            conv.kernel,
            hw.max(conv.kernel),
            hw.max(conv.kernel),
            conv.stride,
            conv.pad.min(conv.kernel / 2),
        );
        let layer =
            PrunedLayer::from_geometry(&conv.name, geo, patterns, conn_rate, 4000 + i as u64);
        total += layer.measure_gpu(fw, model, 5000 + i as u64) * mult as f64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_layer_is_consistent() {
        let geo = Conv2dGeometry::new(8, 8, 3, 3, 10, 10, 1, 1);
        let layer = PrunedLayer::from_geometry("t", geo, 8, 3.6, 1);
        assert_eq!(layer.fkw.to_dense(), layer.weights);
        assert_eq!(layer.lp.kept_kernels(), alpha_for_rate(64, 3.6),);
    }

    #[test]
    fn all_framework_executors_agree_on_dense_weights() {
        // Dense frameworks share dense weights, so they must agree with
        // each other (not with the pruned PatDNN executors).
        let geo = Conv2dGeometry::new(4, 4, 3, 3, 8, 8, 1, 1);
        let layer = PrunedLayer::from_geometry("t", geo, 8, 2.0, 2);
        let input = layer.input(9);
        let reference = layer.framework_exec(Framework::TfliteLike).run(&input);
        for fw in [
            Framework::TvmLike,
            Framework::MnnLike,
            Framework::PatDnnDense,
        ] {
            let out = layer.framework_exec(fw).run(&input);
            assert!(
                reference.approx_eq(&out, 1e-3),
                "{} disagrees with naive dense",
                fw.label()
            );
        }
        // And the sparse executors agree with each other on pruned weights.
        let pat = layer.framework_exec(Framework::PatDnn).run(&input);
        let csr = layer.framework_exec(Framework::PatDnnCsr).run(&input);
        assert!(pat.approx_eq(&csr, 1e-3));
    }

    #[test]
    fn vgg_workloads_cover_table6() {
        let wl = vgg_unique_workloads(8, 3.6, |hw| (hw / 16).max(7));
        assert_eq!(wl.len(), 9);
        let mults: usize = wl.iter().map(|(_, _, m)| m).sum();
        assert_eq!(mults, 13);
        assert_eq!(wl[0].1.geo.in_channels, 3);
    }

    #[test]
    fn measure_cpu_returns_positive_times() {
        let geo = Conv2dGeometry::new(8, 8, 3, 3, 12, 12, 1, 1);
        let layer = PrunedLayer::from_geometry("t", geo, 8, 3.6, 3);
        for fw in [
            Framework::TfliteLike,
            Framework::TvmLike,
            Framework::MnnLike,
            Framework::PatDnnDense,
            Framework::PatDnnCsr,
            Framework::PatDnn,
        ] {
            let t = layer.measure_cpu(fw, 2, 1, 11);
            assert!(t > 0.0, "{}", fw.label());
        }
    }

    #[test]
    fn gpu_measurement_orders_pattern_before_dense() {
        let geo = Conv2dGeometry::new(16, 16, 3, 3, 16, 16, 1, 1);
        let layer = PrunedLayer::from_geometry("t", geo, 8, 3.6, 4);
        let model = GpuModel::adreno_640();
        let pat = layer.measure_gpu(Framework::PatDnn, &model, 1);
        let tfl = layer.measure_gpu(Framework::TfliteLike, &model, 1);
        assert!(pat < tfl, "pattern {pat} vs tflite {tfl}");
    }
}
