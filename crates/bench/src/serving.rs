//! Serving-throughput workload: the compiled engine and the dynamic
//! batching server under synthetic traffic.
//!
//! This goes beyond the paper's per-layer evaluation: it measures what
//! the ROADMAP's serving story cares about — end-to-end model latency as
//! a function of batch size, and the queue/batching overhead the server
//! adds on top of raw engine execution.

use std::sync::Arc;
use std::time::{Duration, Instant};

use patdnn_core::prune::pattern_project_network;
use patdnn_nn::calibrate::calibration_batch;
use patdnn_nn::models::{resnet_small, vgg_small};
use patdnn_nn::network::Sequential;
use patdnn_serve::batching::BatchPolicy;
use patdnn_serve::compile::{compile_network, compile_network_with, CompileOptions};
use patdnn_serve::engine::{Engine, EngineOptions};
use patdnn_serve::quant::compile_network_int8;
use patdnn_serve::registry::ModelRegistry;
use patdnn_serve::server::{Server, ServerConfig};
use patdnn_serve::{AdmissionPolicy, Priority, ServeError, TelemetryPolicy, Terminal, TunePolicy};
use patdnn_tensor::rng::Rng;
use patdnn_tensor::Tensor;

use crate::report::Table;
use crate::RunOptions;

/// Builds the serving benchmark model: vgg_small pruned at 3.6x.
fn pruned_model(seed: u64) -> Sequential {
    let mut rng = Rng::seed_from(seed);
    let mut net = vgg_small(10, &mut rng);
    pattern_project_network(&mut net, 8, 3.6);
    net
}

/// Engine throughput vs batch size: per-item latency amortizes as the
/// batch grows (the reason dynamic batching exists).
pub fn engine_batch_sweep(opts: &RunOptions) -> Table {
    let net = pruned_model(11);
    let artifact = compile_network("vgg_small", &net, [3, 32, 32]).expect("compile");
    let engine = Engine::new(artifact, EngineOptions::default()).expect("engine");
    let mut rng = Rng::seed_from(12);

    let mut table = Table::new(
        "Serving: compiled-engine throughput vs batch size (vgg_small, 3.6x pruned)",
        &["batch", "ms/batch", "ms/item", "items/s"],
    );
    for batch in [1usize, 2, 4, 8] {
        let input = Tensor::randn(&[batch, 3, 32, 32], &mut rng);
        let _warmup = engine.infer(&input).expect("warmup");
        let start = Instant::now();
        for _ in 0..opts.reps {
            std::hint::black_box(engine.infer(&input).expect("infer"));
        }
        let secs = start.elapsed().as_secs_f64() / opts.reps as f64;
        table.push_row(vec![
            batch.to_string(),
            format!("{:.3}", secs * 1e3),
            format!("{:.3}", secs * 1e3 / batch as f64),
            format!("{:.1}", batch as f64 / secs),
        ]);
    }
    table
}

/// Server QPS and latency percentiles under closed-loop synthetic
/// traffic, for a few worker/batching configurations.
pub fn server_throughput(opts: &RunOptions) -> Table {
    let net = pruned_model(13);
    let artifact = compile_network("vgg_small", &net, [3, 32, 32]).expect("compile");
    let requests_per_client = if opts.quick { 10 } else { 25 };

    let mut table = Table::new(
        "Serving: dynamic-batching server under synthetic traffic (vgg_small)",
        &[
            "workers",
            "max_batch",
            "clients",
            "QPS",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "avg batch",
        ],
    );
    for (workers, max_batch, clients) in [(1usize, 1usize, 4usize), (2, 4, 4), (2, 8, 8)] {
        let registry = Arc::new(ModelRegistry::new());
        registry.register(
            "m",
            Engine::new(artifact.clone(), EngineOptions::default()).expect("engine"),
        );
        let server = Server::start(
            Arc::clone(&registry),
            ServerConfig {
                workers,
                batch: BatchPolicy {
                    max_batch,
                    max_wait: Duration::from_millis(2),
                    ..BatchPolicy::default()
                },
                queue_capacity: 1024,
                ..ServerConfig::default()
            },
        );
        let serve_client = server.client();
        let start = Instant::now();
        std::thread::scope(|scope| {
            for client in 0..clients {
                let serve_client = serve_client.clone();
                scope.spawn(move || {
                    let mut rng = Rng::seed_from(500 + client as u64);
                    for _ in 0..requests_per_client {
                        let input = Tensor::randn(&[1, 3, 32, 32], &mut rng);
                        let _ = serve_client.infer("m", input);
                    }
                });
            }
        });
        let wall = start.elapsed().as_secs_f64();
        let snap = server.metrics().snapshot();
        table.push_row(vec![
            workers.to_string(),
            max_batch.to_string(),
            clients.to_string(),
            format!("{:.1}", snap.requests as f64 / wall),
            format!("{:.3}", snap.p50_ms),
            format!("{:.3}", snap.p95_ms),
            format!("{:.3}", snap.p99_ms),
            format!("{:.2}", snap.avg_batch),
        ]);
    }
    table
}

/// Residual (DAG-plan) serving next to the chain workload: a pruned
/// ResNet-style model and the pruned VGG-style chain, each compiled and
/// served through the dynamic-batching server, reporting QPS and tail
/// latency side by side. Demonstrates the slot-based DAG engine carries
/// the paper's residual models (ResNet-50 class topologies) end to end.
pub fn resnet_serving(opts: &RunOptions) -> Table {
    let requests_per_client = if opts.quick { 10 } else { 25 };
    let mut table = Table::new(
        "Serving: chain vs residual DAG plans under synthetic traffic (2 workers, max_batch=4)",
        &[
            "model",
            "plan steps",
            "joins",
            "slots",
            "QPS",
            "p50 ms",
            "p99 ms",
            "avg batch",
        ],
    );
    let models: Vec<(&str, Sequential)> = {
        let mut rng_a = Rng::seed_from(21);
        let mut rng_b = Rng::seed_from(22);
        vec![
            ("vgg_small (chain)", {
                let mut net = vgg_small(10, &mut rng_a);
                pattern_project_network(&mut net, 8, 3.6);
                net
            }),
            ("resnet_small (residual)", {
                let mut net = resnet_small(10, &mut rng_b);
                pattern_project_network(&mut net, 8, 3.6);
                net
            }),
        ]
    };
    for (label, net) in models {
        let artifact = compile_network(label, &net, [3, 32, 32]).expect("compile");
        let steps = artifact.steps.len();
        let joins = artifact
            .steps
            .iter()
            .filter(|s| s.op.kind() == "add")
            .count();
        let slots = artifact.slots;
        let registry = Arc::new(ModelRegistry::new());
        registry.register(
            label,
            Engine::new(artifact, EngineOptions::default()).expect("engine"),
        );
        let server = Server::start(
            Arc::clone(&registry),
            ServerConfig {
                workers: 2,
                batch: BatchPolicy {
                    max_batch: 4,
                    max_wait: Duration::from_millis(2),
                    ..BatchPolicy::default()
                },
                queue_capacity: 1024,
                ..ServerConfig::default()
            },
        );
        let serve_client = server.client();
        let start = Instant::now();
        std::thread::scope(|scope| {
            for client in 0..4usize {
                let serve_client = serve_client.clone();
                scope.spawn(move || {
                    let mut rng = Rng::seed_from(700 + client as u64);
                    for _ in 0..requests_per_client {
                        let input = Tensor::randn(&[1, 3, 32, 32], &mut rng);
                        let _ = serve_client.infer(label, input);
                    }
                });
            }
        });
        let wall = start.elapsed().as_secs_f64();
        let snap = server.metrics().snapshot();
        table.push_row(vec![
            label.to_string(),
            steps.to_string(),
            joins.to_string(),
            slots.to_string(),
            format!("{:.1}", snap.requests as f64 / wall),
            format!("{:.3}", snap.p50_ms),
            format!("{:.3}", snap.p99_ms),
            format!("{:.2}", snap.avg_batch),
        ]);
    }
    table
}

/// Per-layer auto-tuned serving: each model compiled under every
/// [`TunePolicy`] — `off` (the single global default config),
/// `estimate` (per-layer estimator-predicted configs, no timed runs)
/// and `measure` (per-layer GA exploration over real timed runs) — then
/// measured two ways: direct batch-1 engine latency (the paper's
/// real-time metric) and served QPS/tail latency under synthetic
/// traffic. The `cfgs` column counts distinct pattern-conv exec
/// configs, showing that tuned plans are genuinely per-layer rather
/// than one global choice; the `algos` column is a histogram of the
/// per-step *algorithm* choice (direct FKW vs im2col+GEMM vs Winograd)
/// the tuner baked into the plan.
pub fn tuned_serving(opts: &RunOptions) -> Table {
    let requests_per_client = if opts.quick { 5 } else { 25 };
    let reps = if opts.quick { 5 } else { 30.max(opts.reps) };
    let budget = if opts.quick { 8 } else { 24 };
    let policies = [
        TunePolicy::Off,
        TunePolicy::Estimate,
        TunePolicy::Measure { budget },
    ];
    let mut table = Table::new(
        "Serving: per-layer auto-tuned plans, default vs estimate vs measure \
         (2 workers, max_batch=4, 4 clients)",
        &[
            "model",
            "tune",
            "cfgs",
            "b1 p50 ms",
            "QPS",
            "p50 ms",
            "p99 ms",
            "algos",
        ],
    );
    for (name, seed) in [("vgg_small", 41u64), ("resnet_small", 42u64)] {
        let mut rng = Rng::seed_from(seed);
        let mut net = match name {
            "vgg_small" => vgg_small(10, &mut rng),
            _ => resnet_small(10, &mut rng),
        };
        pattern_project_network(&mut net, 8, 3.6);
        for policy in policies {
            let artifact = compile_network_with(
                name,
                &net,
                [3, 32, 32],
                &CompileOptions {
                    tune: policy,
                    ..CompileOptions::default()
                },
            )
            .expect("compile");
            let distinct_configs = {
                let mut cfgs: Vec<_> = artifact
                    .steps
                    .iter()
                    .filter(|s| s.op.kind() == "pattern-conv")
                    .map(|s| format!("{:?}", s.exec))
                    .collect();
                cfgs.sort();
                cfgs.dedup();
                cfgs.len()
            };
            let algo_histogram = algo_histogram(&artifact);
            let engine = Engine::new(artifact.clone(), EngineOptions::default()).expect("engine");

            // Direct batch-1 latency: median of `reps` warm runs.
            let mut lat_rng = Rng::seed_from(seed + 100);
            let x = Tensor::randn(&[1, 3, 32, 32], &mut lat_rng);
            engine.infer(&x).expect("warmup");
            let mut runs: Vec<f64> = (0..reps)
                .map(|_| {
                    let t = Instant::now();
                    std::hint::black_box(engine.infer(&x).expect("infer"));
                    t.elapsed().as_secs_f64() * 1e3
                })
                .collect();
            runs.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            let b1_p50 = runs[runs.len() / 2];

            // Served traffic through the dynamic-batching server.
            let registry = Arc::new(ModelRegistry::new());
            registry.register(name, engine);
            let server = Server::start(
                Arc::clone(&registry),
                ServerConfig {
                    workers: 2,
                    batch: BatchPolicy {
                        max_batch: 4,
                        max_wait: Duration::from_millis(2),
                        ..BatchPolicy::default()
                    },
                    queue_capacity: 1024,
                    ..ServerConfig::default()
                },
            );
            let serve_client = server.client();
            let start = Instant::now();
            std::thread::scope(|scope| {
                for client in 0..4usize {
                    let serve_client = serve_client.clone();
                    scope.spawn(move || {
                        let mut rng = Rng::seed_from(900 + client as u64);
                        for _ in 0..requests_per_client {
                            let input = Tensor::randn(&[1, 3, 32, 32], &mut rng);
                            let _ = serve_client.infer(name, input);
                        }
                    });
                }
            });
            let wall = start.elapsed().as_secs_f64();
            let snap = server.metrics().snapshot();
            table.push_row(vec![
                name.to_string(),
                policy.label().to_string(),
                distinct_configs.to_string(),
                format!("{b1_p50:.3}"),
                format!("{:.1}", snap.requests as f64 / wall),
                format!("{:.3}", snap.p50_ms),
                format!("{:.3}", snap.p99_ms),
                algo_histogram,
            ]);
        }
    }
    table
}

/// Histogram of the per-step algorithm choice over a plan's pattern
/// convs, e.g. `direct x5 winograd x2`.
fn algo_histogram(artifact: &patdnn_serve::ModelArtifact) -> String {
    use patdnn_compiler::tune::space::ConvAlgo;
    let counts: Vec<(ConvAlgo, usize)> = ConvAlgo::all()
        .iter()
        .map(|&algo| {
            let n = artifact
                .steps
                .iter()
                .filter(|s| s.op.kind() == "pattern-conv" && s.exec.algo == algo)
                .count();
            (algo, n)
        })
        .collect();
    let parts: Vec<String> = counts
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(algo, n)| format!("{} x{n}", algo.label()))
        .collect();
    if parts.is_empty() {
        "-".to_owned()
    } else {
        parts.join(" ")
    }
}

/// Per-precision serving measurements for one compiled plan.
struct PrecisionRun {
    weight_bytes: usize,
    b1_p50_ms: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// One model's f32-vs-int8 comparison.
struct QuantComparison {
    model: &'static str,
    f32_run: PrecisionRun,
    int8_run: PrecisionRun,
    /// Max elementwise |f32 - int8| over the calibration batch.
    max_dev: f64,
}

fn measure_precision(
    artifact: patdnn_serve::ModelArtifact,
    model: &str,
    reps: usize,
    requests_per_client: usize,
    seed: u64,
) -> (PrecisionRun, Engine) {
    let weight_bytes = artifact.weight_bytes();
    let engine = Engine::new(artifact, EngineOptions::default()).expect("engine");

    // Direct batch-1 latency: median of warm runs (the paper's
    // real-time metric).
    let mut lat_rng = Rng::seed_from(seed);
    let x = Tensor::randn(&[1, 3, 32, 32], &mut lat_rng);
    engine.infer(&x).expect("warmup");
    let mut runs: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(engine.infer(&x).expect("infer"));
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    runs.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let b1_p50_ms = runs[runs.len() / 2];

    // Served traffic through the dynamic-batching server. The engine is
    // rebuilt for the registry; measurement uses the returned handle.
    let registry = Arc::new(ModelRegistry::new());
    let served = registry.register(
        model,
        Engine::new(engine.artifact().clone(), EngineOptions::default()).expect("engine"),
    );
    drop(served);
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 2,
            batch: BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(2),
                ..BatchPolicy::default()
            },
            queue_capacity: 1024,
            ..ServerConfig::default()
        },
    );
    let serve_client = server.client();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..4usize {
            let serve_client = serve_client.clone();
            let model = model.to_owned();
            scope.spawn(move || {
                let mut rng = Rng::seed_from(seed + 10 + client as u64);
                for _ in 0..requests_per_client {
                    let input = Tensor::randn(&[1, 3, 32, 32], &mut rng);
                    let _ = serve_client.infer(&model, input);
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let snap = server.metrics().snapshot();
    (
        PrecisionRun {
            weight_bytes,
            b1_p50_ms,
            qps: snap.requests as f64 / wall,
            p50_ms: snap.p50_ms,
            p99_ms: snap.p99_ms,
        },
        engine,
    )
}

/// Runs the f32-vs-int8 comparison for both serving models.
fn quant_comparisons(opts: &RunOptions) -> Vec<QuantComparison> {
    let requests_per_client = if opts.quick { 5 } else { 25 };
    let reps = if opts.quick { 9 } else { 30.max(opts.reps) };
    let mut out = Vec::new();
    for (model, seed) in [("vgg_small", 81u64), ("resnet_small", 82u64)] {
        let mut rng = Rng::seed_from(seed);
        let mut net: Sequential = match model {
            "vgg_small" => vgg_small(10, &mut rng),
            _ => resnet_small(10, &mut rng),
        };
        pattern_project_network(&mut net, 8, 3.6);
        let calib = calibration_batch([3, 32, 32], 8, seed + 100);
        let f32_plan = compile_network(model, &net, [3, 32, 32]).expect("compile");
        let int8_plan =
            compile_network_int8(model, &net, [3, 32, 32], &CompileOptions::default(), &calib)
                .expect("quantized compile");
        let (f32_run, f32_engine) =
            measure_precision(f32_plan, model, reps, requests_per_client, seed + 200);
        let (int8_run, int8_engine) =
            measure_precision(int8_plan, model, reps, requests_per_client, seed + 300);
        let a = f32_engine.infer(&calib).expect("f32 infer");
        let b = int8_engine.infer(&calib).expect("int8 infer");
        let max_dev = a.max_abs_diff(&b).expect("same shape") as f64;
        out.push(QuantComparison {
            model,
            f32_run,
            int8_run,
            max_dev,
        });
    }
    out
}

/// INT8 quantized serving next to the f32 path (`repro serving-quant`):
/// both models compiled at both precisions, reporting batch-1 p50
/// latency (the paper's real-time metric), served QPS and tail latency
/// under synthetic traffic, weight storage, and the max elementwise
/// output deviation of the quantized plan on its calibration batch.
pub fn quant_serving(opts: &RunOptions) -> Table {
    let (table, _) = quant_serving_report(opts);
    table
}

/// [`quant_serving`] plus a machine-readable JSON report (written by
/// `repro --json` and uploaded from CI as a workflow artifact, so the
/// perf trajectory accumulates across commits).
pub fn quant_serving_report(opts: &RunOptions) -> (Table, String) {
    let comparisons = quant_comparisons(opts);
    let mut table = Table::new(
        "Serving: f32 vs int8 quantized plans (2 workers, max_batch=4, 4 clients)",
        &[
            "model",
            "precision",
            "weights KiB",
            "b1 p50 ms",
            "QPS",
            "p50 ms",
            "p99 ms",
            "b1 speedup",
            "max dev",
        ],
    );
    let mut models_json = Vec::new();
    for c in &comparisons {
        let speedup = c.f32_run.b1_p50_ms / c.int8_run.b1_p50_ms;
        for (precision, run, speedup_cell, dev_cell) in [
            ("f32", &c.f32_run, "1.00x".to_owned(), "-".to_owned()),
            (
                "int8",
                &c.int8_run,
                format!("{speedup:.2}x"),
                format!("{:.2e}", c.max_dev),
            ),
        ] {
            table.push_row(vec![
                c.model.to_owned(),
                precision.to_owned(),
                format!("{:.1}", run.weight_bytes as f64 / 1024.0),
                format!("{:.3}", run.b1_p50_ms),
                format!("{:.1}", run.qps),
                format!("{:.3}", run.p50_ms),
                format!("{:.3}", run.p99_ms),
                speedup_cell,
                dev_cell,
            ]);
        }
        let run_json = |r: &PrecisionRun| {
            format!(
                "{{\"weight_bytes\":{},\"b1_p50_ms\":{:.5},\"qps\":{:.2},\"p50_ms\":{:.5},\"p99_ms\":{:.5}}}",
                r.weight_bytes, r.b1_p50_ms, r.qps, r.p50_ms, r.p99_ms
            )
        };
        models_json.push(format!(
            "{{\"model\":\"{}\",\"f32\":{},\"int8\":{},\"b1_speedup\":{:.3},\"max_dev\":{:.3e}}}",
            c.model,
            run_json(&c.f32_run),
            run_json(&c.int8_run),
            speedup,
            c.max_dev
        ));
    }
    let json = format!(
        "{{\"workload\":\"serving-quant\",\"quick\":{},\"models\":[{}]}}\n",
        opts.quick,
        models_json.join(",")
    );
    (table, json)
}

/// Client-side outcome tally for one logical request class in one
/// SLO-workload run.
#[derive(Default)]
struct SloClassStats {
    submitted: usize,
    completed: usize,
    expired: usize,
    shed: usize,
    /// Latencies of completed requests, milliseconds.
    latencies_ms: Vec<f64>,
}

impl SloClassStats {
    fn pct(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        sorted[(q * (sorted.len() - 1) as f64).round() as usize]
    }
}

/// One run of the saturating priority-mix workload.
struct SloRun {
    mode: &'static str,
    interactive: SloClassStats,
    batch: SloClassStats,
    /// Completed requests as counted by the server — must equal the
    /// client-side completed tally (zero expired requests executed).
    server_completed: u64,
    server_expired: u64,
    server_shed: u64,
}

/// Runs the priority-mix workload once. `with_slo` submits through the
/// full lifecycle surface (priorities + deadlines); without it, every
/// request is an undifferentiated `Standard` submission — the FIFO
/// baseline the comparison is against.
///
/// The schedule saturates one worker: a deep backlog of batch-class
/// work first (its tail overflows the admission budget and is shed),
/// then interactive arrivals racing the backlog drain, including a
/// tranche with deadlines deliberately tighter than one batch
/// execution — under SLO scheduling those are dropped *before*
/// execution instead of served late.
fn slo_run(artifact: &patdnn_serve::ModelArtifact, with_slo: bool, opts: &RunOptions) -> SloRun {
    let backlog = if opts.quick { 24 } else { 60 };
    let interactive_n = if opts.quick { 8 } else { 16 };
    let tight_n = if opts.quick { 4 } else { 6 };
    // Per-model budget: the background model's backlog tail overflows
    // it and is shed; the foreground model has its own headroom, so
    // interactive arrivals are admitted against a still-deep backlog.
    let budget = backlog * 4 / 5;

    let registry = Arc::new(ModelRegistry::new());
    for model in ["bg", "fg"] {
        registry.register(
            model,
            Engine::new(artifact.clone(), EngineOptions::default()).expect("engine"),
        );
    }
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 1,
            batch: BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(2),
                ..BatchPolicy::default()
            },
            queue_capacity: backlog * 2,
            admission: AdmissionPolicy {
                max_in_flight: backlog * 2,
                max_per_model: budget,
            },
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    let mut rng = Rng::seed_from(0x510);
    let mut submit = |model: &str, priority: Priority, deadline: Option<Duration>| {
        let mut req = client
            .request(model)
            .input(Tensor::randn(&[1, 3, 32, 32], &mut rng))
            .priority(if with_slo {
                priority
            } else {
                Priority::Standard
            });
        if with_slo {
            if let Some(d) = deadline {
                req = req.deadline_in(d);
            }
        }
        req.submit()
    };

    // Phase A: the batch-class backlog on the background model; its
    // tail overflows the per-model budget and is shed at submit.
    let mut batch_stats = SloClassStats::default();
    let mut interactive_stats = SloClassStats::default();
    let mut waiters = Vec::new();
    for _ in 0..backlog {
        batch_stats.submitted += 1;
        match submit("bg", Priority::Batch, None) {
            Ok(handle) => waiters.push((false, handle)),
            Err(ServeError::Shed { .. }) => batch_stats.shed += 1,
            Err(e) => panic!("unexpected submit failure: {e}"),
        }
    }
    // Phase B: interactive arrivals on the foreground model racing the
    // backlog drain. The generous deadline is meetable under priority
    // scheduling; the tight tranche (shorter than one batch execution)
    // is not, and must be dropped unexecuted.
    for i in 0..interactive_n + tight_n {
        interactive_stats.submitted += 1;
        let deadline = if i < interactive_n {
            Duration::from_secs(5)
        } else {
            Duration::from_millis(2)
        };
        match submit("fg", Priority::Interactive, Some(deadline)) {
            Ok(handle) => waiters.push((true, handle)),
            Err(ServeError::Shed { .. }) => interactive_stats.shed += 1,
            Err(e) => panic!("unexpected submit failure: {e}"),
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    for (is_interactive, handle) in waiters {
        let stats = if is_interactive {
            &mut interactive_stats
        } else {
            &mut batch_stats
        };
        match handle.wait() {
            Terminal::Completed(resp) => {
                stats.completed += 1;
                stats.latencies_ms.push(resp.latency.as_secs_f64() * 1e3);
            }
            Terminal::Expired { .. } => stats.expired += 1,
            Terminal::Shed { .. } => stats.shed += 1,
            other => panic!("unexpected terminal state {other:?}"),
        }
    }
    let snap = server.metrics().snapshot();
    server.shutdown();
    SloRun {
        mode: if with_slo { "slo" } else { "fifo" },
        interactive: interactive_stats,
        batch: batch_stats,
        server_completed: snap.requests,
        server_expired: snap.expired,
        server_shed: snap.shed,
    }
}

/// The latency-SLO serving workload (`repro serving-slo`): a
/// saturating mixed-priority workload served twice — once as an
/// undifferentiated FIFO baseline, once through the request-lifecycle
/// API with priorities and deadlines — reporting per-class p50/p99 and
/// shed/expired rates. With deadlines enabled, interactive tail
/// latency drops well below the FIFO baseline and requests that cannot
/// meet their SLO are dropped *before* execution, never served late.
pub fn slo_serving(opts: &RunOptions) -> Table {
    let (table, _) = slo_serving_report(opts);
    table
}

/// [`slo_serving`] plus a machine-readable JSON report (written by
/// `repro --json` and uploaded from CI as a workflow artifact).
pub fn slo_serving_report(opts: &RunOptions) -> (Table, String) {
    let net = pruned_model(91);
    let artifact = compile_network("m", &net, [3, 32, 32]).expect("compile");
    let runs = [
        slo_run(&artifact, false, opts),
        slo_run(&artifact, true, opts),
    ];
    let mut table = Table::new(
        "Serving: latency-SLO priority mix, FIFO baseline vs deadline/priority scheduling \
         (vgg_small, 1 worker, max_batch=4, saturating backlog)",
        &[
            "run",
            "class",
            "submitted",
            "completed",
            "expired",
            "shed",
            "p50 ms",
            "p99 ms",
        ],
    );
    let mut runs_json = Vec::new();
    for run in &runs {
        // The server completed exactly what the clients saw complete:
        // zero expired (or shed) requests were ever executed.
        assert_eq!(
            run.server_completed as usize,
            run.interactive.completed + run.batch.completed,
            "{}: server executed a request the clients saw dropped",
            run.mode
        );
        let mut classes_json = Vec::new();
        for (class, stats) in [("interactive", &run.interactive), ("batch", &run.batch)] {
            table.push_row(vec![
                run.mode.to_string(),
                class.to_string(),
                stats.submitted.to_string(),
                stats.completed.to_string(),
                stats.expired.to_string(),
                stats.shed.to_string(),
                format!("{:.3}", stats.pct(0.50)),
                format!("{:.3}", stats.pct(0.99)),
            ]);
            classes_json.push(format!(
                "{{\"class\":\"{class}\",\"submitted\":{},\"completed\":{},\"expired\":{},\
                 \"shed\":{},\"p50_ms\":{:.5},\"p99_ms\":{:.5}}}",
                stats.submitted,
                stats.completed,
                stats.expired,
                stats.shed,
                stats.pct(0.50),
                stats.pct(0.99)
            ));
        }
        runs_json.push(format!(
            "{{\"mode\":\"{}\",\"server_completed\":{},\"server_expired\":{},\
             \"server_shed\":{},\"classes\":[{}]}}",
            run.mode,
            run.server_completed,
            run.server_expired,
            run.server_shed,
            classes_json.join(",")
        ));
    }
    let json = format!(
        "{{\"workload\":\"serving-slo\",\"quick\":{},\"runs\":[{}]}}\n",
        opts.quick,
        runs_json.join(",")
    );
    (table, json)
}

/// Both serving tables.
pub fn serving(opts: &RunOptions) -> Vec<Table> {
    vec![engine_batch_sweep(opts), server_throughput(opts)]
}

/// The serving-profile workload without the JSON report.
pub fn serving_profile(opts: &RunOptions) -> Vec<Table> {
    let (tables, _) = serving_profile_report(opts);
    tables
}

/// Serves a mixed f32/int8 priority load with full telemetry and
/// reports where request time goes: the per-stage latency breakdown
/// (enqueue → delivery) and the hottest per-layer profiles, plus a
/// machine-readable JSON report (written by `repro --json` and
/// uploaded from CI as a workflow artifact, so the per-stage latency
/// trajectory accumulates across commits).
pub fn serving_profile_report(opts: &RunOptions) -> (Vec<Table>, String) {
    let requests_per_client = if opts.quick { 10 } else { 30 };
    let clients = 4;

    // Two models, two precisions: a pruned f32 vgg_small next to an
    // int8-quantized resnet_small, as in the quantized-serving
    // workload, so the layer profiles cover both precisions.
    let registry = Arc::new(ModelRegistry::new());
    let vgg = compile_network("vgg_f32", &pruned_model(101), [3, 32, 32]).expect("compile");
    registry.register(
        "vgg_f32",
        Engine::new(vgg, EngineOptions::default()).expect("engine"),
    );
    let mut rng = Rng::seed_from(102);
    let mut resnet = resnet_small(10, &mut rng);
    pattern_project_network(&mut resnet, 8, 3.6);
    let calib = calibration_batch([3, 32, 32], 8, 103);
    let resnet_int8 = compile_network_int8(
        "resnet_int8",
        &resnet,
        [3, 32, 32],
        &CompileOptions::default(),
        &calib,
    )
    .expect("int8 compile");
    registry.register(
        "resnet_int8",
        Engine::new(resnet_int8, EngineOptions::default()).expect("engine"),
    );

    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 2,
            batch: BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(2),
                ..BatchPolicy::default()
            },
            queue_capacity: 1024,
            telemetry: TelemetryPolicy::Full,
            ..ServerConfig::default()
        },
    );
    let serve_client = server.client();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let serve_client = serve_client.clone();
            scope.spawn(move || {
                let mut rng = Rng::seed_from(700 + client as u64);
                // Each client pins one model; priorities alternate so
                // both scheduling classes appear in the trace.
                let model = if client % 2 == 0 {
                    "vgg_f32"
                } else {
                    "resnet_int8"
                };
                for r in 0..requests_per_client {
                    let priority = if r % 2 == 0 {
                        Priority::Interactive
                    } else {
                        Priority::Batch
                    };
                    let input = Tensor::randn(&[1, 3, 32, 32], &mut rng);
                    let _ = serve_client
                        .request(model)
                        .input(input)
                        .priority(priority)
                        .submit()
                        .map(|handle| handle.wait());
                }
            });
        }
    });

    let snap = server.metrics().snapshot();
    let stages = server.telemetry().stage_breakdown();
    let mut layers = server.telemetry().layer_snapshots();
    layers.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms));
    server.shutdown();

    let envelope_us: u64 = stages.iter().map(|s| s.total_us).sum();
    let mut stage_table = Table::new(
        "Serving profile: per-stage latency breakdown under a mixed f32/int8 \
         priority load (full telemetry, 2 workers, max_batch=4)",
        &["stage", "count", "mean ms", "share %"],
    );
    let mut stages_json = Vec::new();
    for stat in stages {
        let share = if envelope_us == 0 {
            0.0
        } else {
            stat.total_us as f64 / envelope_us as f64 * 100.0
        };
        stage_table.push_row(vec![
            stat.stage.label().to_string(),
            stat.count.to_string(),
            format!("{:.3}", stat.mean_ms()),
            format!("{share:.1}"),
        ]);
        stages_json.push(format!(
            "{{\"stage\":\"{}\",\"count\":{},\"mean_ms\":{:.5},\"share_pct\":{share:.3}}}",
            stat.stage.label(),
            stat.count,
            stat.mean_ms()
        ));
    }

    // Top layers per model (not globally), so the slower model's
    // profile doesn't crowd the faster one out of the report.
    let mut per_model: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    let hottest: Vec<_> = layers
        .iter()
        .filter(|l| {
            let seen = per_model.entry(l.model.as_str()).or_insert(0);
            *seen += 1;
            *seen <= 4
        })
        .collect();
    let mut layer_table = Table::new(
        "Serving profile: hottest layers by total profiled wall time (top 4 per model)",
        &[
            "model", "step", "kind", "prec", "mean ms", "p99 ms", "GFLOP/s", "count",
        ],
    );
    let mut layers_json = Vec::new();
    for layer in hottest {
        layer_table.push_row(vec![
            layer.model.clone(),
            layer.step.to_string(),
            layer.kind.to_string(),
            layer.precision.label().to_string(),
            format!("{:.3}", layer.mean_ms),
            format!("{:.3}", layer.p99_ms),
            format!("{:.2}", layer.gflops),
            layer.count.to_string(),
        ]);
        layers_json.push(format!(
            "{{\"model\":\"{}\",\"step\":{},\"kind\":\"{}\",\"precision\":\"{}\",\
             \"mean_ms\":{:.5},\"p99_ms\":{:.5},\"gflops\":{:.3},\"count\":{}}}",
            layer.model,
            layer.step,
            layer.kind,
            layer.precision.label(),
            layer.mean_ms,
            layer.p99_ms,
            layer.gflops,
            layer.count
        ));
    }

    let json = format!(
        "{{\"workload\":\"serving-profile\",\"quick\":{},\"requests\":{},\
         \"p50_ms\":{:.5},\"p99_ms\":{:.5},\"stages\":[{}],\"layers\":[{}]}}\n",
        opts.quick,
        snap.requests,
        snap.p50_ms,
        snap.p99_ms,
        stages_json.join(","),
        layers_json.join(",")
    );
    (vec![stage_table, layer_table], json)
}

/// Median warm batch-1 latency of one engine, milliseconds.
fn warm_b1_p50_ms(engine: &Engine, reps: usize, seed: u64) -> f64 {
    let mut rng = Rng::seed_from(seed);
    let x = Tensor::randn(&[1, 3, 32, 32], &mut rng);
    engine.infer(&x).expect("warmup");
    let mut runs: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(engine.infer(&x).expect("infer"));
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    runs.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    runs[runs.len() / 2]
}

/// The micro-kernel serving workload without the JSON report.
pub fn serving_kernels(opts: &RunOptions) -> Table {
    let (table, _) = serving_kernels_report(opts);
    table
}

/// The micro-kernel serving workload (`repro serving-kernels`): one
/// pruned model compiled once per lowering — direct FKW, forced
/// im2col+GEMM, Winograd on eligible steps — plus the int8 direct
/// path, each run batch-1 through the register-tiled micro-kernels the
/// runtime dispatched for this CPU. Reports the dispatched kernel
/// variant, the pre-packed weight footprint, and the batch-1 p50 next
/// to the f32 direct baseline, plus a machine-readable JSON report
/// (written by `repro --json` and uploaded from CI as a workflow
/// artifact, so the micro-kernel perf trajectory accumulates across
/// commits).
pub fn serving_kernels_report(opts: &RunOptions) -> (Table, String) {
    use patdnn_compiler::tune::space::ConvAlgo;
    use patdnn_serve::algo_exec::{fkw_density, WINOGRAD_DENSITY_THRESHOLD};
    use patdnn_serve::LayerPlan;

    let reps = if opts.quick { 9 } else { 40.max(opts.reps) };
    let kernel = patdnn_tensor::kernels::active_variant().label();
    // Pruned lightly (1.5x): at the serving default 3.6x every layer
    // falls under the Winograd density gate (>= 0.25) and the
    // "winograd" row would silently run direct, so the lowering
    // comparison uses a dense-ish model where all three are legal.
    let net = {
        let mut rng = Rng::seed_from(111);
        let mut net = vgg_small(10, &mut rng);
        pattern_project_network(&mut net, 8, 1.5);
        net
    };
    let direct = compile_network("vgg_small", &net, [3, 32, 32]).expect("compile");

    // Forced lowerings: the same plan with every pattern conv routed
    // through the densified executors (Winograd only where the
    // eligibility guard admits it).
    let mut im2col = direct.clone();
    for step in &mut im2col.steps {
        if matches!(step.op, LayerPlan::PatternConv { .. }) {
            step.exec.algo = ConvAlgo::Im2col;
        }
    }
    let mut winograd = direct.clone();
    let mut wino_steps = 0;
    for step in &mut winograd.steps {
        if let LayerPlan::PatternConv { stride, fkw, .. } = &step.op {
            if *stride == 1 && fkw.kernel == 3 && fkw_density(fkw) >= WINOGRAD_DENSITY_THRESHOLD {
                step.exec.algo = ConvAlgo::Winograd;
                wino_steps += 1;
            }
        }
    }
    assert!(wino_steps > 0, "winograd row must exercise the lowering");
    let calib = calibration_batch([3, 32, 32], 8, 112);
    let int8 = compile_network_int8(
        "vgg_small",
        &net,
        [3, 32, 32],
        &CompileOptions::default(),
        &calib,
    )
    .expect("quantized compile");

    let mut table = Table::new(
        "Serving: register-tiled micro-kernel lowerings, batch-1 latency \
         (vgg_small, 1.5x pruned)",
        &[
            "config",
            "kernel",
            "packed KiB",
            "b1 p50 ms",
            "vs f32 direct",
        ],
    );
    let mut rows_json = Vec::new();
    let mut direct_p50 = 0.0f64;
    for (i, (config, artifact)) in [
        ("f32 direct", direct),
        ("f32 im2col", im2col),
        ("f32 winograd", winograd),
        ("int8 direct", int8),
    ]
    .into_iter()
    .enumerate()
    {
        let engine = Engine::new(artifact, EngineOptions::default()).expect("engine");
        let packed_bytes = engine.packed_weight_bytes();
        let p50 = warm_b1_p50_ms(&engine, reps, 113 + i as u64);
        if i == 0 {
            direct_p50 = p50;
        }
        let speedup = direct_p50 / p50;
        table.push_row(vec![
            config.to_owned(),
            kernel.to_owned(),
            format!("{:.1}", packed_bytes as f64 / 1024.0),
            format!("{p50:.3}"),
            format!("{speedup:.2}x"),
        ]);
        rows_json.push(format!(
            "{{\"config\":\"{config}\",\"packed_bytes\":{packed_bytes},\
             \"b1_p50_ms\":{p50:.5},\"speedup\":{speedup:.3}}}"
        ));
    }
    let json = format!(
        "{{\"workload\":\"serving-kernels\",\"quick\":{},\"kernel\":\"{kernel}\",\"rows\":[{}]}}\n",
        opts.quick,
        rows_json.join(",")
    );
    (table, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_tables_have_expected_shape() {
        let opts = RunOptions::quick();
        let tables = serving(&opts);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 4, "four batch sizes");
        assert_eq!(tables[1].rows.len(), 3, "three server configs");
        // Sanity: positive throughput in every row.
        for row in &tables[0].rows {
            let items_per_s: f64 = row[3].parse().expect("numeric");
            assert!(items_per_s > 0.0);
        }
    }

    #[test]
    fn tuned_serving_reports_every_policy_for_both_models() {
        let opts = RunOptions::quick();
        let table = tuned_serving(&opts);
        assert_eq!(table.rows.len(), 6, "2 models x 3 tuning policies");
        for row in &table.rows {
            let qps: f64 = row[4].parse().expect("numeric QPS");
            assert!(qps > 0.0);
            let b1_p50: f64 = row[3].parse().expect("numeric batch-1 p50");
            assert!(b1_p50 > 0.0);
        }
        // Untuned plans carry one global config; estimated plans must be
        // per-layer (visibly non-uniform).
        for chunk in table.rows.chunks(3) {
            let off_cfgs: usize = chunk[0][2].parse().expect("numeric");
            let est_cfgs: usize = chunk[1][2].parse().expect("numeric");
            assert_eq!(off_cfgs, 1, "off policy is one global config");
            assert!(
                est_cfgs > 1,
                "estimate policy must produce per-layer configs, got {est_cfgs}"
            );
        }
        // Every row reports its per-step algorithm histogram; the
        // untuned plan is all-direct by construction.
        for row in &table.rows {
            assert!(!row[7].is_empty(), "algos column populated");
        }
        for chunk in table.rows.chunks(3) {
            assert!(
                chunk[0][7].starts_with("direct x")
                    && !chunk[0][7].contains("im2col")
                    && !chunk[0][7].contains("winograd"),
                "off policy keeps every step direct, got {:?}",
                chunk[0][7]
            );
        }
    }

    #[test]
    fn serving_kernels_reports_every_lowering() {
        let opts = RunOptions::quick();
        let (table, json) = serving_kernels_report(&opts);
        assert_eq!(table.rows.len(), 4, "three f32 lowerings plus int8");
        assert_eq!(table.rows[0][0], "f32 direct");
        assert_eq!(table.rows[0][4], "1.00x", "baseline row is its own unit");
        for row in &table.rows {
            let packed_kib: f64 = row[2].parse().expect("numeric packed KiB");
            assert!(packed_kib > 0.0, "{}: weights pre-pack at load", row[0]);
            let p50: f64 = row[3].parse().expect("numeric p50");
            assert!(p50 > 0.0, "{}: positive latency", row[0]);
        }
        // The densified rows really packed conv weights: their
        // footprint must exceed the direct row's (FC panels only).
        let direct_kib: f64 = table.rows[0][2].parse().expect("numeric");
        for row in [&table.rows[1], &table.rows[2]] {
            let kib: f64 = row[2].parse().expect("numeric");
            assert!(
                kib > direct_kib,
                "{}: densified lowering must pack conv weights",
                row[0]
            );
        }
        assert!(json.contains("\"workload\":\"serving-kernels\""));
        assert!(json.contains(&format!(
            "\"kernel\":\"{}\"",
            patdnn_tensor::kernels::active_variant().label()
        )));
        for config in ["f32 direct", "f32 im2col", "f32 winograd", "int8 direct"] {
            assert!(
                json.contains(&format!("\"config\":\"{config}\"")),
                "{config}"
            );
        }
    }

    #[test]
    fn quant_serving_reports_both_precisions_with_bounded_deviation() {
        let opts = RunOptions::quick();
        let (table, json) = quant_serving_report(&opts);
        assert_eq!(table.rows.len(), 4, "2 models x 2 precisions");
        for chunk in table.rows.chunks(2) {
            let (f32_row, int8_row) = (&chunk[0], &chunk[1]);
            assert_eq!(f32_row[1], "f32");
            assert_eq!(int8_row[1], "int8");
            let f32_kib: f64 = f32_row[2].parse().expect("numeric weights");
            let int8_kib: f64 = int8_row[2].parse().expect("numeric weights");
            assert!(int8_kib < f32_kib, "quantized weights must be smaller");
            // Deviation on the calibration batch is deterministic (no
            // timing involved) and must stay within the serving bound.
            let dev: f64 = int8_row[8].parse().expect("numeric deviation");
            assert!(dev <= 1e-2, "{}: deviation {dev}", int8_row[0]);
            for row in [f32_row, int8_row] {
                let qps: f64 = row[4].parse().expect("numeric QPS");
                assert!(qps > 0.0);
            }
        }
        // The JSON report carries both models and parses as one object
        // per model with the same deterministic deviation bound.
        assert!(json.contains("\"workload\":\"serving-quant\""));
        assert!(json.contains("\"model\":\"vgg_small\""));
        assert!(json.contains("\"model\":\"resnet_small\""));
        assert!(json.contains("\"b1_speedup\""));
    }

    /// The SLO workload's acceptance contract: interactive p99 with
    /// deadlines/priorities enabled beats the undifferentiated FIFO
    /// baseline under saturation, no expired request executes, and the
    /// per-row accounting closes.
    #[test]
    fn slo_serving_interactive_p99_beats_fifo_and_accounting_closes() {
        let opts = RunOptions::quick();
        let (table, json) = slo_serving_report(&opts);
        assert_eq!(table.rows.len(), 4, "2 runs x 2 classes");
        for row in &table.rows {
            let submitted: usize = row[2].parse().expect("numeric submitted");
            let completed: usize = row[3].parse().expect("numeric completed");
            let expired: usize = row[4].parse().expect("numeric expired");
            let shed: usize = row[5].parse().expect("numeric shed");
            assert_eq!(
                completed + expired + shed,
                submitted,
                "{} {}: every request reached exactly one terminal state",
                row[0],
                row[1]
            );
        }
        let (fifo_interactive, slo_interactive) = (&table.rows[0], &table.rows[2]);
        assert_eq!(fifo_interactive[0], "fifo");
        assert_eq!(slo_interactive[0], "slo");
        assert_eq!(fifo_interactive[1], "interactive");
        assert_eq!(slo_interactive[1], "interactive");
        let fifo_p99: f64 = fifo_interactive[7].parse().expect("numeric p99");
        let slo_p99: f64 = slo_interactive[7].parse().expect("numeric p99");
        assert!(
            slo_p99 > 0.0 && fifo_p99 > 0.0,
            "both runs completed interactive work"
        );
        assert!(
            slo_p99 < fifo_p99,
            "interactive p99 with deadlines ({slo_p99:.3}ms) must beat \
             the FIFO baseline ({fifo_p99:.3}ms) under saturation"
        );
        // The tight-deadline tranche is dropped unexecuted under SLO
        // scheduling (FIFO has no deadlines, so nothing can expire).
        let slo_expired: usize = slo_interactive[4].parse().expect("numeric expired");
        assert!(slo_expired > 0, "tight-SLO requests must expire unexecuted");
        let fifo_expired: usize = fifo_interactive[4].parse().expect("numeric expired");
        assert_eq!(fifo_expired, 0, "the FIFO baseline carries no deadlines");
        assert!(json.contains("\"workload\":\"serving-slo\""));
        assert!(json.contains("\"mode\":\"fifo\""));
        assert!(json.contains("\"mode\":\"slo\""));
    }

    /// The profile workload's contract: every lifecycle stage is
    /// observed for every completed request, the stage shares sum to
    /// ~100%, and the layer profiles cover both precisions.
    #[test]
    fn serving_profile_covers_all_stages_and_both_precisions() {
        let opts = RunOptions::quick();
        let (tables, json) = serving_profile_report(&opts);
        assert_eq!(tables.len(), 2, "stage table + layer table");
        let (stage_table, layer_table) = (&tables[0], &tables[1]);
        assert_eq!(stage_table.rows.len(), 6, "all six lifecycle stages");
        let mut share_sum = 0.0;
        for row in &stage_table.rows {
            let count: u64 = row[1].parse().expect("numeric count");
            assert!(count > 0, "{}: stage observed at least once", row[0]);
            share_sum += row[3].parse::<f64>().expect("numeric share");
        }
        assert!(
            (share_sum - 100.0).abs() < 1.0,
            "stage shares must sum to ~100%, got {share_sum:.1}"
        );
        assert!(!layer_table.rows.is_empty(), "layer profiles recorded");
        let precisions: std::collections::BTreeSet<&str> =
            layer_table.rows.iter().map(|row| row[3].as_str()).collect();
        assert!(precisions.contains("f32"), "f32 layers profiled");
        assert!(precisions.contains("int8"), "int8 layers profiled");
        assert!(json.contains("\"workload\":\"serving-profile\""));
        for stage in [
            "enqueue",
            "admission",
            "queue-wait",
            "batch-assembly",
            "execution",
            "delivery",
        ] {
            assert!(
                json.contains(&format!("\"stage\":\"{stage}\"")),
                "{stage} in JSON"
            );
        }
    }

    #[test]
    fn resnet_serving_reports_both_topologies() {
        let opts = RunOptions::quick();
        let table = resnet_serving(&opts);
        assert_eq!(table.rows.len(), 2, "chain and residual rows");
        let chain = &table.rows[0];
        let residual = &table.rows[1];
        assert_eq!(chain[2], "0", "chain plan has no joins");
        assert_eq!(residual[2], "2", "resnet_small has two joins");
        for row in [chain, residual] {
            let qps: f64 = row[4].parse().expect("numeric QPS");
            assert!(qps > 0.0);
        }
    }
}
