//! Property-based tests for the tensor substrate.

use patdnn_tensor::gemm::{gemm, gemm_ref};
use patdnn_tensor::im2col::conv2d_im2col;
use patdnn_tensor::winograd::conv2d_winograd;
use patdnn_tensor::{conv2d_ref, Conv2dGeometry, Tensor};
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    (-100i32..100).prop_map(|v| v as f32 / 16.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blocked GEMM agrees with the reference for arbitrary shapes/content.
    #[test]
    fn gemm_blocked_matches_ref(
        m in 1usize..20,
        n in 1usize..20,
        k in 1usize..20,
        seed in any::<u64>(),
    ) {
        let mut rng = patdnn_tensor::rng::Rng::seed_from(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm_ref(m, n, k, &a, &b, &mut c1);
        gemm(m, n, k, &a, &b, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// GEMM is linear in A: (alpha * A) * B == alpha * (A * B).
    #[test]
    fn gemm_is_linear(
        m in 1usize..8,
        n in 1usize..8,
        k in 1usize..8,
        alpha in small_f32(),
        seed in any::<u64>(),
    ) {
        let mut rng = patdnn_tensor::rng::Rng::seed_from(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let a_scaled: Vec<f32> = a.iter().map(|&x| alpha * x).collect();
        let mut c = vec![0.0; m * n];
        let mut c_scaled = vec![0.0; m * n];
        gemm_ref(m, n, k, &a, &b, &mut c);
        gemm_ref(m, n, k, &a_scaled, &b, &mut c_scaled);
        for (x, y) in c.iter().zip(&c_scaled) {
            prop_assert!((alpha * x - y).abs() < 1e-2, "{} vs {y}", alpha * x);
        }
    }

    /// im2col+GEMM convolution equals the direct reference.
    #[test]
    fn im2col_conv_matches_ref(
        oc in 1usize..5,
        ic in 1usize..5,
        hw in 3usize..10,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in any::<u64>(),
    ) {
        let mut rng = patdnn_tensor::rng::Rng::seed_from(seed);
        let k = 3usize.min(hw);
        let geo = Conv2dGeometry::new(oc, ic, k, k, hw, hw, stride, pad);
        let input = Tensor::randn(&[1, ic, hw, hw], &mut rng);
        let weights = Tensor::randn(&[oc, ic, k, k], &mut rng);
        let r = conv2d_ref(&input, &weights, None, &geo);
        let c = conv2d_im2col(&input, &weights, None, &geo);
        prop_assert!(r.approx_eq(&c, 1e-3), "diff {:?}", r.max_abs_diff(&c));
    }

    /// Winograd convolution equals the direct reference for 3x3/stride-1.
    #[test]
    fn winograd_conv_matches_ref(
        oc in 1usize..4,
        ic in 1usize..4,
        hw in 4usize..11,
        pad in 0usize..2,
        seed in any::<u64>(),
    ) {
        let mut rng = patdnn_tensor::rng::Rng::seed_from(seed);
        let geo = Conv2dGeometry::new(oc, ic, 3, 3, hw, hw, 1, pad);
        let input = Tensor::randn(&[1, ic, hw, hw], &mut rng);
        let weights = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let r = conv2d_ref(&input, &weights, None, &geo);
        let w = conv2d_winograd(&input, &weights, None, &geo);
        prop_assert!(r.approx_eq(&w, 5e-3), "diff {:?}", r.max_abs_diff(&w));
    }

    /// Convolution is linear in the input.
    #[test]
    fn conv_is_linear_in_input(
        hw in 3usize..8,
        alpha in small_f32(),
        seed in any::<u64>(),
    ) {
        let mut rng = patdnn_tensor::rng::Rng::seed_from(seed);
        let geo = Conv2dGeometry::new(2, 2, 3, 3, hw, hw, 1, 1);
        let input = Tensor::randn(&[1, 2, hw, hw], &mut rng);
        let weights = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        let scaled = input.map(|x| alpha * x);
        let out = conv2d_ref(&input, &weights, None, &geo);
        let out_scaled = conv2d_ref(&scaled, &weights, None, &geo);
        let expect = out.map(|x| alpha * x);
        prop_assert!(expect.approx_eq(&out_scaled, 1e-2));
    }

    /// Tensor reshape round-trips and preserves content.
    #[test]
    fn reshape_round_trip(len in 1usize..64, seed in any::<u64>()) {
        let mut rng = patdnn_tensor::rng::Rng::seed_from(seed);
        let t = Tensor::randn(&[len], &mut rng);
        let r = t.clone().reshape(&[1, len]).unwrap().reshape(&[len]).unwrap();
        prop_assert_eq!(t, r);
    }
}
