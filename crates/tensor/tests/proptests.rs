//! Property-based tests for the tensor substrate.
//!
//! The properties are exercised over a deterministic sweep of seeds and
//! shapes drawn from the workspace's own [`Rng`] (the container builds
//! offline, so no external property-testing framework is used). Each test
//! derives its case parameters from the seed, covering the same ranges
//! the original proptest strategies did.

use patdnn_tensor::gemm::{gemm, gemm_ref};
use patdnn_tensor::im2col::conv2d_im2col;
use patdnn_tensor::rng::Rng;
use patdnn_tensor::winograd::conv2d_winograd;
use patdnn_tensor::{conv2d_ref, Conv2dGeometry, Tensor};

/// Quantized small scalar, mirroring the original `small_f32` strategy.
fn small_f32(rng: &mut Rng) -> f32 {
    (rng.below(200) as i32 - 100) as f32 / 16.0
}

/// Blocked GEMM agrees with the reference for arbitrary shapes/content.
#[test]
fn gemm_blocked_matches_ref() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from(seed);
        let (m, n, k) = (1 + rng.below(19), 1 + rng.below(19), 1 + rng.below(19));
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm_ref(m, n, k, &a, &b, &mut c1);
        gemm(m, n, k, &a, &b, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-3, "seed {seed}: {x} vs {y}");
        }
    }
}

/// GEMM is linear in A: (alpha * A) * B == alpha * (A * B).
#[test]
fn gemm_is_linear() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from(seed);
        let (m, n, k) = (1 + rng.below(7), 1 + rng.below(7), 1 + rng.below(7));
        let alpha = small_f32(&mut rng);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let a_scaled: Vec<f32> = a.iter().map(|&x| alpha * x).collect();
        let mut c = vec![0.0; m * n];
        let mut c_scaled = vec![0.0; m * n];
        gemm_ref(m, n, k, &a, &b, &mut c);
        gemm_ref(m, n, k, &a_scaled, &b, &mut c_scaled);
        for (x, y) in c.iter().zip(&c_scaled) {
            assert!(
                (alpha * x - y).abs() < 1e-2,
                "seed {seed}: {} vs {y}",
                alpha * x
            );
        }
    }
}

/// im2col+GEMM convolution equals the direct reference.
#[test]
fn im2col_conv_matches_ref() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from(seed);
        let (oc, ic) = (1 + rng.below(4), 1 + rng.below(4));
        let hw = 3 + rng.below(7);
        let stride = 1 + rng.below(2);
        let pad = rng.below(2);
        let k = 3usize.min(hw);
        let geo = Conv2dGeometry::new(oc, ic, k, k, hw, hw, stride, pad);
        let input = Tensor::randn(&[1, ic, hw, hw], &mut rng);
        let weights = Tensor::randn(&[oc, ic, k, k], &mut rng);
        let r = conv2d_ref(&input, &weights, None, &geo);
        let c = conv2d_im2col(&input, &weights, None, &geo);
        assert!(
            r.approx_eq(&c, 1e-3),
            "seed {seed}: diff {:?}",
            r.max_abs_diff(&c)
        );
    }
}

/// Winograd convolution equals the direct reference for 3x3/stride-1.
#[test]
fn winograd_conv_matches_ref() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from(seed);
        let (oc, ic) = (1 + rng.below(3), 1 + rng.below(3));
        let hw = 4 + rng.below(7);
        let pad = rng.below(2);
        let geo = Conv2dGeometry::new(oc, ic, 3, 3, hw, hw, 1, pad);
        let input = Tensor::randn(&[1, ic, hw, hw], &mut rng);
        let weights = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let r = conv2d_ref(&input, &weights, None, &geo);
        let w = conv2d_winograd(&input, &weights, None, &geo);
        assert!(
            r.approx_eq(&w, 5e-3),
            "seed {seed}: diff {:?}",
            r.max_abs_diff(&w)
        );
    }
}

/// Convolution is linear in the input.
#[test]
fn conv_is_linear_in_input() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from(seed);
        let hw = 3 + rng.below(5);
        let alpha = small_f32(&mut rng);
        let geo = Conv2dGeometry::new(2, 2, 3, 3, hw, hw, 1, 1);
        let input = Tensor::randn(&[1, 2, hw, hw], &mut rng);
        let weights = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        let scaled = input.map(|x| alpha * x);
        let out = conv2d_ref(&input, &weights, None, &geo);
        let out_scaled = conv2d_ref(&scaled, &weights, None, &geo);
        let expect = out.map(|x| alpha * x);
        assert!(expect.approx_eq(&out_scaled, 1e-2), "seed {seed}");
    }
}

/// Tensor reshape round-trips and preserves content.
#[test]
fn reshape_round_trip() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from(seed);
        let len = 1 + rng.below(63);
        let t = Tensor::randn(&[len], &mut rng);
        let r = t
            .clone()
            .reshape(&[1, len])
            .unwrap()
            .reshape(&[len])
            .unwrap();
        assert_eq!(t, r, "seed {seed}");
    }
}
