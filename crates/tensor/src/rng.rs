//! Deterministic pseudo-random number generation.
//!
//! Everything in the PatDNN workspace that needs randomness (weight
//! initialization, synthetic datasets, workload generators, the genetic
//! tuner) goes through [`Rng`], a xoshiro256** generator seeded through
//! SplitMix64. Determinism matters here: the reproduction harness must
//! produce identical tables on every run.

/// A deterministic xoshiro256** pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use patdnn_tensor::rng::Rng;
///
/// let mut a = Rng::seed_from(7);
/// let mut b = Rng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rng {
    state: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    spare_normal: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded into the 256-bit xoshiro state with SplitMix64,
    /// so nearby seeds still produce uncorrelated streams.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            state,
            spare_normal: None,
        }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Returns a uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform range is inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.next_f32()
    }

    /// Returns a uniform integer in `[0, bound)` without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method.
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as usize;
            }
        }
    }

    /// Returns a standard-normal sample (Box-Muller).
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z as f32;
        }
        // Avoid ln(0) by resampling u1 = 0.
        let mut u1 = self.next_f64();
        while u1 <= f64::EPSILON {
            u1 = self.next_f64();
        }
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        (r * theta.cos()) as f32
    }

    /// Returns a normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks `k` distinct indices from `0..n` (partial Fisher-Yates).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Splits off an independently-seeded child generator.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from(self.next_u64())
    }
}

impl Default for Rng {
    fn default() -> Self {
        Rng::seed_from(0x5EED_CAFE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Rng::seed_from(9);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Rng::seed_from(10);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            counts[rng.below(5)] += 1;
        }
        for &c in &counts {
            assert!((1_700..2_300).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(12);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng::seed_from(13);
        let picked = rng.sample_indices(20, 8);
        assert_eq!(picked.len(), 8);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
        assert!(sorted.iter().all(|&i| i < 20));
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = Rng::seed_from(77);
        let mut child = parent.fork();
        // The child stream should not be a shifted copy of the parent stream.
        let p: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }
}
