//! Matrix multiplication kernels.
//!
//! Two implementations are provided: a straightforward reference
//! ([`gemm_ref`]) and a cache-blocked, 4×4-unrolled kernel ([`gemm`]) used
//! by the im2col convolution path of the dense baselines. Matrices are
//! row-major: `A` is `m×k`, `B` is `k×n`, `C` is `m×n`.

/// Reference `C += A * B` in row-major order.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`n`/`k` dimensions imply.
pub fn gemm_ref(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k, "A is too short");
    assert!(b.len() >= k * n, "B is too short");
    assert!(c.len() >= m * n, "C is too short");
    for i in 0..m {
        for p in 0..k {
            let aval = a[i * k + p];
            if aval == 0.0 {
                continue;
            }
            let brow = &b[p * n..p * n + n];
            let crow = &mut c[i * n..i * n + n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aval * bv;
            }
        }
    }
}

/// Cache-block sizes for [`gemm`] (fit comfortably in L1/L2 on any host).
const MC: usize = 64;
const NC: usize = 256;
const KC: usize = 128;

/// Blocked `C += A * B` with a 4×4 inner kernel.
///
/// Produces results identical (up to FP reassociation) to [`gemm_ref`]
/// but substantially faster for the layer-sized matrices the dense
/// executors produce.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`n`/`k` dimensions imply.
pub fn gemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k, "A is too short");
    assert!(b.len() >= k * n, "B is too short");
    assert!(c.len() >= m * n, "C is too short");
    for jc in (0..n).step_by(NC) {
        let nb = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kb = KC.min(k - pc);
            for ic in (0..m).step_by(MC) {
                let mb = MC.min(m - ic);
                block_kernel(ic, jc, pc, mb, nb, kb, n, k, a, b, c);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn block_kernel(
    ic: usize,
    jc: usize,
    pc: usize,
    mb: usize,
    nb: usize,
    kb: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let mut i = 0;
    while i + 4 <= mb {
        let mut j = 0;
        while j + 4 <= nb {
            // 4x4 register tile.
            let mut acc = [[0.0f32; 4]; 4];
            for p in 0..kb {
                let a0 = a[(ic + i) * k + pc + p];
                let a1 = a[(ic + i + 1) * k + pc + p];
                let a2 = a[(ic + i + 2) * k + pc + p];
                let a3 = a[(ic + i + 3) * k + pc + p];
                let boff = (pc + p) * n + jc + j;
                let b0 = b[boff];
                let b1 = b[boff + 1];
                let b2 = b[boff + 2];
                let b3 = b[boff + 3];
                acc[0][0] += a0 * b0;
                acc[0][1] += a0 * b1;
                acc[0][2] += a0 * b2;
                acc[0][3] += a0 * b3;
                acc[1][0] += a1 * b0;
                acc[1][1] += a1 * b1;
                acc[1][2] += a1 * b2;
                acc[1][3] += a1 * b3;
                acc[2][0] += a2 * b0;
                acc[2][1] += a2 * b1;
                acc[2][2] += a2 * b2;
                acc[2][3] += a2 * b3;
                acc[3][0] += a3 * b0;
                acc[3][1] += a3 * b1;
                acc[3][2] += a3 * b2;
                acc[3][3] += a3 * b3;
            }
            for (di, row) in acc.iter().enumerate() {
                let coff = (ic + i + di) * n + jc + j;
                c[coff] += row[0];
                c[coff + 1] += row[1];
                c[coff + 2] += row[2];
                c[coff + 3] += row[3];
            }
            j += 4;
        }
        // Remainder columns.
        while j < nb {
            for di in 0..4 {
                let mut acc = 0.0f32;
                for p in 0..kb {
                    acc += a[(ic + i + di) * k + pc + p] * b[(pc + p) * n + jc + j];
                }
                c[(ic + i + di) * n + jc + j] += acc;
            }
            j += 1;
        }
        i += 4;
    }
    // Remainder rows.
    while i < mb {
        for j in 0..nb {
            let mut acc = 0.0f32;
            for p in 0..kb {
                acc += a[(ic + i) * k + pc + p] * b[(pc + p) * n + jc + j];
            }
            c[(ic + i) * n + jc + j] += acc;
        }
        i += 1;
    }
}

/// `C += A * B^T` where `B` is stored row-major as `n×k`.
///
/// Used by the fully-connected backward pass.
///
/// # Panics
///
/// Panics if any slice is shorter than its dimensions imply.
pub fn gemm_bt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k, "A is too short");
    assert!(b.len() >= n * k, "B is too short");
    assert!(c.len() >= m * n, "C is too short");
    for i in 0..m {
        let arow = &a[i * k..i * k + k];
        for j in 0..n {
            let brow = &b[j * k..j * k + k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            c[i * n + j] += acc;
        }
    }
}

/// `C += A^T * B` where `A` is stored row-major as `k×m`.
///
/// Used by the fully-connected weight-gradient computation.
///
/// # Panics
///
/// Panics if any slice is shorter than its dimensions imply.
pub fn gemm_at(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= k * m, "A is too short");
    assert!(b.len() >= k * n, "B is too short");
    assert!(c.len() >= m * n, "C is too short");
    for p in 0..k {
        for i in 0..m {
            let aval = a[p * m + i];
            if aval == 0.0 {
                continue;
            }
            let brow = &b[p * n..p * n + n];
            let crow = &mut c[i * n..i * n + n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aval * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_mat(rng: &mut Rng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "mismatch at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn blocked_matches_reference_on_odd_sizes() {
        let mut rng = Rng::seed_from(21);
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 9, 33),
            (64, 64, 64),
            (70, 130, 150),
        ] {
            let a = random_mat(&mut rng, m * k);
            let b = random_mat(&mut rng, k * n);
            let mut c_ref = vec![0.0; m * n];
            let mut c_blk = vec![0.0; m * n];
            gemm_ref(m, n, k, &a, &b, &mut c_ref);
            gemm(m, n, k, &a, &b, &mut c_blk);
            assert_close(&c_ref, &c_blk, 1e-4);
        }
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0];
        let mut c = vec![10.0];
        gemm(1, 1, 2, &a, &b, &mut c);
        assert_eq!(c[0], 10.0 + 11.0);
    }

    #[test]
    fn identity_multiplication() {
        let n = 8;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let mut rng = Rng::seed_from(3);
        let b = random_mat(&mut rng, n * n);
        let mut c = vec![0.0; n * n];
        gemm(n, n, n, &eye, &b, &mut c);
        assert_close(&c, &b, 1e-6);
    }

    #[test]
    fn transposed_variants_match_reference() {
        let mut rng = Rng::seed_from(4);
        let (m, n, k) = (6, 10, 14);
        let a = random_mat(&mut rng, m * k);
        let b = random_mat(&mut rng, k * n);
        let mut c_ref = vec![0.0; m * n];
        gemm_ref(m, n, k, &a, &b, &mut c_ref);

        // A * B == A * (B^T)^T : build Bt (n x k) and use gemm_bt.
        let mut bt = vec![0.0; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut c_bt = vec![0.0; m * n];
        gemm_bt(m, n, k, &a, &bt, &mut c_bt);
        assert_close(&c_ref, &c_bt, 1e-4);

        // A * B == (A^T)^T * B : build At (k x m) and use gemm_at.
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut c_at = vec![0.0; m * n];
        gemm_at(m, n, k, &at, &b, &mut c_at);
        assert_close(&c_ref, &c_at, 1e-4);
    }
}
