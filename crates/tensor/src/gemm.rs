//! Matrix multiplication kernels.
//!
//! Two implementations are provided: a straightforward reference
//! ([`gemm_ref`]) and a register-tiled kernel ([`gemm`]) that packs both
//! operands into panels and drives the runtime-dispatched micro-kernels
//! of [`crate::kernels`] (AVX2/FMA where detected, portable otherwise).
//! The transposed variants ([`gemm_bt`], [`gemm_i8_bt`]) reduce each
//! output through the dispatched dot-product primitives; `gemm_i8_bt`
//! stays exact (`i8×i8→i32`) on every variant. Matrices are row-major:
//! `A` is `m×k`, `B` is `k×n`, `C` is `m×n`.

use crate::kernels;

/// Reference `C += A * B` in row-major order.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`n`/`k` dimensions imply.
pub fn gemm_ref(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k, "A is too short");
    assert!(b.len() >= k * n, "B is too short");
    assert!(c.len() >= m * n, "C is too short");
    for i in 0..m {
        for p in 0..k {
            let aval = a[i * k + p];
            if aval == 0.0 {
                continue;
            }
            let brow = &b[p * n..p * n + n];
            let crow = &mut c[i * n..i * n + n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aval * bv;
            }
        }
    }
}

/// Register-tiled `C += A * B` over the dispatched micro-kernels.
///
/// Both operands are packed into `MR`×`NR` panel layout and reduced by
/// [`crate::kernels::gemm_packed_f32`]. Produces results identical (up
/// to FP reassociation) to [`gemm_ref`] but substantially faster for
/// the layer-sized matrices the dense executors produce. Callers on the
/// serving warm path should pack weights once and call
/// `gemm_packed_f32` directly instead; this convenience wrapper packs
/// per call.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`n`/`k` dimensions imply.
pub fn gemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k, "A is too short");
    assert!(b.len() >= k * n, "B is too short");
    assert!(c.len() >= m * n, "C is too short");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let mut ap = vec![0.0f32; kernels::packed_a_len(m, k)];
    let mut bp = vec![0.0f32; kernels::packed_b_len(k, n)];
    kernels::pack_a_f32(m, k, a, k, &mut ap);
    kernels::pack_b_f32(k, n, b, n, &mut bp);
    kernels::gemm_packed_f32(kernels::active_kernel(), m, n, k, &ap, &bp, c, n);
}

/// `C += A * B^T` where `B` is stored row-major as `n×k`.
///
/// Used by the fully-connected backward pass.
///
/// # Panics
///
/// Panics if any slice is shorter than its dimensions imply.
pub fn gemm_bt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k, "A is too short");
    assert!(b.len() >= n * k, "B is too short");
    assert!(c.len() >= m * n, "C is too short");
    let kernel = kernels::active_kernel();
    for i in 0..m {
        let arow = &a[i * k..i * k + k];
        for j in 0..n {
            c[i * n + j] += kernel.dot_f32(arow, &b[j * k..j * k + k]);
        }
    }
}

/// Integer `C += A * B^T` with exact `i8 × i8 → i32` accumulation,
/// where `B` is stored row-major as `n×k`.
///
/// This is the quantized counterpart of [`gemm_bt`], used by the INT8
/// fully-connected serving path: activations (`A`) and weights (`B`)
/// arrive as symmetric 8-bit codes and the caller dequantizes the `i32`
/// accumulators with one multiply per element. The reduction runs
/// through the dispatched [`crate::kernels`] `dot_i8` tile (AVX2
/// `madd_epi16` or the portable loop); integer accumulation is
/// order-independent, so both variants are bit-identical.
///
/// # Panics
///
/// Panics if any slice is shorter than its dimensions imply.
pub fn gemm_i8_bt(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    assert!(a.len() >= m * k, "A is too short");
    assert!(b.len() >= n * k, "B is too short");
    assert!(c.len() >= m * n, "C is too short");
    let kernel = kernels::active_kernel();
    for i in 0..m {
        let arow = &a[i * k..i * k + k];
        for j in 0..n {
            c[i * n + j] += kernel.dot_i8(arow, &b[j * k..j * k + k]);
        }
    }
}

/// `C += A^T * B` where `A` is stored row-major as `k×m`.
///
/// Used by the fully-connected weight-gradient computation.
///
/// # Panics
///
/// Panics if any slice is shorter than its dimensions imply.
pub fn gemm_at(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= k * m, "A is too short");
    assert!(b.len() >= k * n, "B is too short");
    assert!(c.len() >= m * n, "C is too short");
    for p in 0..k {
        for i in 0..m {
            let aval = a[p * m + i];
            if aval == 0.0 {
                continue;
            }
            let brow = &b[p * n..p * n + n];
            let crow = &mut c[i * n..i * n + n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aval * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_mat(rng: &mut Rng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "mismatch at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn blocked_matches_reference_on_odd_sizes() {
        let mut rng = Rng::seed_from(21);
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 9, 33),
            (64, 64, 64),
            (70, 130, 150),
        ] {
            let a = random_mat(&mut rng, m * k);
            let b = random_mat(&mut rng, k * n);
            let mut c_ref = vec![0.0; m * n];
            let mut c_blk = vec![0.0; m * n];
            gemm_ref(m, n, k, &a, &b, &mut c_ref);
            gemm(m, n, k, &a, &b, &mut c_blk);
            assert_close(&c_ref, &c_blk, 1e-4);
        }
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0];
        let mut c = vec![10.0];
        gemm(1, 1, 2, &a, &b, &mut c);
        assert_eq!(c[0], 10.0 + 11.0);
    }

    #[test]
    fn identity_multiplication() {
        let n = 8;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let mut rng = Rng::seed_from(3);
        let b = random_mat(&mut rng, n * n);
        let mut c = vec![0.0; n * n];
        gemm(n, n, n, &eye, &b, &mut c);
        assert_close(&c, &b, 1e-6);
    }

    #[test]
    fn transposed_variants_match_reference() {
        let mut rng = Rng::seed_from(4);
        let (m, n, k) = (6, 10, 14);
        let a = random_mat(&mut rng, m * k);
        let b = random_mat(&mut rng, k * n);
        let mut c_ref = vec![0.0; m * n];
        gemm_ref(m, n, k, &a, &b, &mut c_ref);

        // A * B == A * (B^T)^T : build Bt (n x k) and use gemm_bt.
        let mut bt = vec![0.0; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut c_bt = vec![0.0; m * n];
        gemm_bt(m, n, k, &a, &bt, &mut c_bt);
        assert_close(&c_ref, &c_bt, 1e-4);

        // A * B == (A^T)^T * B : build At (k x m) and use gemm_at.
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut c_at = vec![0.0; m * n];
        gemm_at(m, n, k, &at, &b, &mut c_at);
        assert_close(&c_ref, &c_at, 1e-4);
    }

    #[test]
    fn integer_gemm_matches_exact_reference_on_odd_sizes() {
        let mut rng = Rng::seed_from(9);
        for &(m, n, k) in &[(1usize, 1usize, 1usize), (3, 5, 7), (4, 9, 16), (6, 10, 33)] {
            let a: Vec<i8> = (0..m * k).map(|_| rng.below(255) as i8).collect();
            let b: Vec<i8> = (0..n * k).map(|_| rng.below(255) as i8).collect();
            let mut c = vec![0i32; m * n];
            gemm_i8_bt(m, n, k, &a, &b, &mut c);
            for i in 0..m {
                for j in 0..n {
                    let want: i32 = (0..k)
                        .map(|p| a[i * k + p] as i32 * b[j * k + p] as i32)
                        .sum();
                    assert_eq!(c[i * n + j], want, "({i}, {j})");
                }
            }
        }
    }

    #[test]
    fn integer_gemm_accumulates_into_existing_values() {
        let a = [127i8, -127];
        let b = [127i8, 127];
        let mut c = [5i32];
        gemm_i8_bt(1, 1, 2, &a, &b, &mut c);
        assert_eq!(c[0], 5 + 127 * 127 - 127 * 127);
    }
}
