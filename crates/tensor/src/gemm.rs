//! Matrix multiplication kernels.
//!
//! Two implementations are provided: a straightforward reference
//! ([`gemm_ref`]) and a cache-blocked, 4×4-unrolled kernel ([`gemm`]) used
//! by the im2col convolution path of the dense baselines. Matrices are
//! row-major: `A` is `m×k`, `B` is `k×n`, `C` is `m×n`.

/// Reference `C += A * B` in row-major order.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`n`/`k` dimensions imply.
pub fn gemm_ref(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k, "A is too short");
    assert!(b.len() >= k * n, "B is too short");
    assert!(c.len() >= m * n, "C is too short");
    for i in 0..m {
        for p in 0..k {
            let aval = a[i * k + p];
            if aval == 0.0 {
                continue;
            }
            let brow = &b[p * n..p * n + n];
            let crow = &mut c[i * n..i * n + n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aval * bv;
            }
        }
    }
}

/// Cache-block sizes for [`gemm`] (fit comfortably in L1/L2 on any host).
const MC: usize = 64;
const NC: usize = 256;
const KC: usize = 128;

/// Blocked `C += A * B` with a 4×4 inner kernel.
///
/// Produces results identical (up to FP reassociation) to [`gemm_ref`]
/// but substantially faster for the layer-sized matrices the dense
/// executors produce.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`n`/`k` dimensions imply.
pub fn gemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k, "A is too short");
    assert!(b.len() >= k * n, "B is too short");
    assert!(c.len() >= m * n, "C is too short");
    for jc in (0..n).step_by(NC) {
        let nb = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kb = KC.min(k - pc);
            for ic in (0..m).step_by(MC) {
                let mb = MC.min(m - ic);
                block_kernel(ic, jc, pc, mb, nb, kb, n, k, a, b, c);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn block_kernel(
    ic: usize,
    jc: usize,
    pc: usize,
    mb: usize,
    nb: usize,
    kb: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let mut i = 0;
    while i + 4 <= mb {
        let mut j = 0;
        while j + 4 <= nb {
            // 4x4 register tile.
            let mut acc = [[0.0f32; 4]; 4];
            for p in 0..kb {
                let a0 = a[(ic + i) * k + pc + p];
                let a1 = a[(ic + i + 1) * k + pc + p];
                let a2 = a[(ic + i + 2) * k + pc + p];
                let a3 = a[(ic + i + 3) * k + pc + p];
                let boff = (pc + p) * n + jc + j;
                let b0 = b[boff];
                let b1 = b[boff + 1];
                let b2 = b[boff + 2];
                let b3 = b[boff + 3];
                acc[0][0] += a0 * b0;
                acc[0][1] += a0 * b1;
                acc[0][2] += a0 * b2;
                acc[0][3] += a0 * b3;
                acc[1][0] += a1 * b0;
                acc[1][1] += a1 * b1;
                acc[1][2] += a1 * b2;
                acc[1][3] += a1 * b3;
                acc[2][0] += a2 * b0;
                acc[2][1] += a2 * b1;
                acc[2][2] += a2 * b2;
                acc[2][3] += a2 * b3;
                acc[3][0] += a3 * b0;
                acc[3][1] += a3 * b1;
                acc[3][2] += a3 * b2;
                acc[3][3] += a3 * b3;
            }
            for (di, row) in acc.iter().enumerate() {
                let coff = (ic + i + di) * n + jc + j;
                c[coff] += row[0];
                c[coff + 1] += row[1];
                c[coff + 2] += row[2];
                c[coff + 3] += row[3];
            }
            j += 4;
        }
        // Remainder columns.
        while j < nb {
            for di in 0..4 {
                let mut acc = 0.0f32;
                for p in 0..kb {
                    acc += a[(ic + i + di) * k + pc + p] * b[(pc + p) * n + jc + j];
                }
                c[(ic + i + di) * n + jc + j] += acc;
            }
            j += 1;
        }
        i += 4;
    }
    // Remainder rows.
    while i < mb {
        for j in 0..nb {
            let mut acc = 0.0f32;
            for p in 0..kb {
                acc += a[(ic + i) * k + pc + p] * b[(pc + p) * n + jc + j];
            }
            c[(ic + i) * n + jc + j] += acc;
        }
        i += 1;
    }
}

/// `C += A * B^T` where `B` is stored row-major as `n×k`.
///
/// Used by the fully-connected backward pass.
///
/// # Panics
///
/// Panics if any slice is shorter than its dimensions imply.
pub fn gemm_bt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k, "A is too short");
    assert!(b.len() >= n * k, "B is too short");
    assert!(c.len() >= m * n, "C is too short");
    for i in 0..m {
        let arow = &a[i * k..i * k + k];
        for j in 0..n {
            let brow = &b[j * k..j * k + k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            c[i * n + j] += acc;
        }
    }
}

/// Integer `C += A * B^T` with exact `i8 × i8 → i32` accumulation,
/// where `B` is stored row-major as `n×k`.
///
/// This is the quantized counterpart of [`gemm_bt`], used by the INT8
/// fully-connected serving path: activations (`A`) and weights (`B`)
/// arrive as symmetric 8-bit codes and the caller dequantizes the `i32`
/// accumulators with one multiply per element. The 4-way split
/// accumulators keep the reduction dependency chain short enough for
/// the autovectorizer.
///
/// # Panics
///
/// Panics if any slice is shorter than its dimensions imply.
pub fn gemm_i8_bt(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    assert!(a.len() >= m * k, "A is too short");
    assert!(b.len() >= n * k, "B is too short");
    assert!(c.len() >= m * n, "C is too short");
    for i in 0..m {
        let arow = &a[i * k..i * k + k];
        for j in 0..n {
            let brow = &b[j * k..j * k + k];
            let mut acc = [0i32; 4];
            let mut p = 0;
            while p + 4 <= k {
                acc[0] += arow[p] as i32 * brow[p] as i32;
                acc[1] += arow[p + 1] as i32 * brow[p + 1] as i32;
                acc[2] += arow[p + 2] as i32 * brow[p + 2] as i32;
                acc[3] += arow[p + 3] as i32 * brow[p + 3] as i32;
                p += 4;
            }
            while p < k {
                acc[0] += arow[p] as i32 * brow[p] as i32;
                p += 1;
            }
            c[i * n + j] += acc[0] + acc[1] + acc[2] + acc[3];
        }
    }
}

/// `C += A^T * B` where `A` is stored row-major as `k×m`.
///
/// Used by the fully-connected weight-gradient computation.
///
/// # Panics
///
/// Panics if any slice is shorter than its dimensions imply.
pub fn gemm_at(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= k * m, "A is too short");
    assert!(b.len() >= k * n, "B is too short");
    assert!(c.len() >= m * n, "C is too short");
    for p in 0..k {
        for i in 0..m {
            let aval = a[p * m + i];
            if aval == 0.0 {
                continue;
            }
            let brow = &b[p * n..p * n + n];
            let crow = &mut c[i * n..i * n + n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aval * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_mat(rng: &mut Rng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "mismatch at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn blocked_matches_reference_on_odd_sizes() {
        let mut rng = Rng::seed_from(21);
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 9, 33),
            (64, 64, 64),
            (70, 130, 150),
        ] {
            let a = random_mat(&mut rng, m * k);
            let b = random_mat(&mut rng, k * n);
            let mut c_ref = vec![0.0; m * n];
            let mut c_blk = vec![0.0; m * n];
            gemm_ref(m, n, k, &a, &b, &mut c_ref);
            gemm(m, n, k, &a, &b, &mut c_blk);
            assert_close(&c_ref, &c_blk, 1e-4);
        }
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0];
        let mut c = vec![10.0];
        gemm(1, 1, 2, &a, &b, &mut c);
        assert_eq!(c[0], 10.0 + 11.0);
    }

    #[test]
    fn identity_multiplication() {
        let n = 8;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let mut rng = Rng::seed_from(3);
        let b = random_mat(&mut rng, n * n);
        let mut c = vec![0.0; n * n];
        gemm(n, n, n, &eye, &b, &mut c);
        assert_close(&c, &b, 1e-6);
    }

    #[test]
    fn transposed_variants_match_reference() {
        let mut rng = Rng::seed_from(4);
        let (m, n, k) = (6, 10, 14);
        let a = random_mat(&mut rng, m * k);
        let b = random_mat(&mut rng, k * n);
        let mut c_ref = vec![0.0; m * n];
        gemm_ref(m, n, k, &a, &b, &mut c_ref);

        // A * B == A * (B^T)^T : build Bt (n x k) and use gemm_bt.
        let mut bt = vec![0.0; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut c_bt = vec![0.0; m * n];
        gemm_bt(m, n, k, &a, &bt, &mut c_bt);
        assert_close(&c_ref, &c_bt, 1e-4);

        // A * B == (A^T)^T * B : build At (k x m) and use gemm_at.
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut c_at = vec![0.0; m * n];
        gemm_at(m, n, k, &at, &b, &mut c_at);
        assert_close(&c_ref, &c_at, 1e-4);
    }

    #[test]
    fn integer_gemm_matches_exact_reference_on_odd_sizes() {
        let mut rng = Rng::seed_from(9);
        for &(m, n, k) in &[(1usize, 1usize, 1usize), (3, 5, 7), (4, 9, 16), (6, 10, 33)] {
            let a: Vec<i8> = (0..m * k).map(|_| rng.below(255) as i8).collect();
            let b: Vec<i8> = (0..n * k).map(|_| rng.below(255) as i8).collect();
            let mut c = vec![0i32; m * n];
            gemm_i8_bt(m, n, k, &a, &b, &mut c);
            for i in 0..m {
                for j in 0..n {
                    let want: i32 = (0..k)
                        .map(|p| a[i * k + p] as i32 * b[j * k + p] as i32)
                        .sum();
                    assert_eq!(c[i * n + j], want, "({i}, {j})");
                }
            }
        }
    }

    #[test]
    fn integer_gemm_accumulates_into_existing_values() {
        let a = [127i8, -127];
        let b = [127i8, 127];
        let mut c = [5i32];
        gemm_i8_bt(1, 1, 2, &a, &b, &mut c);
        assert_eq!(c[0], 5 + 127 * 127 - 127 * 127);
    }
}
