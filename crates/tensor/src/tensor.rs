//! The dense `f32` tensor used throughout the workspace.

use std::error::Error;
use std::fmt;

use crate::rng::Rng;
use crate::shape::Shape4;

/// Error raised by fallible [`Tensor`] constructors and reshapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided buffer length does not match the product of the shape.
    LengthMismatch {
        /// Expected number of elements (product of shape dims).
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must agree in shape do not.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Vec<usize>,
        /// Shape of the right operand.
        right: Vec<usize>,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer of {actual} elements does not fill shape of {expected}"
                )
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
        }
    }
}

impl Error for TensorError {}

/// A contiguous row-major tensor of `f32` values.
///
/// This is deliberately simple — no views, no strides, no broadcasting — so
/// that the executors built on top of it have fully predictable memory
/// behaviour (which is exactly what the paper's compiler optimizations
/// reason about).
///
/// # Examples
///
/// ```
/// use patdnn_tensor::Tensor;
///
/// let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// # Ok::<(), patdnn_tensor::TensorError>(())
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; len],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the buffer length does
    /// not equal the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self, TensorError> {
        let expected = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::LengthMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a tensor of standard-normal samples.
    pub fn randn(shape: &[usize], rng: &mut Rng) -> Self {
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| rng.normal()).collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a tensor of normal samples with the given standard deviation.
    pub fn randn_std(shape: &[usize], std: f32, rng: &mut Rng) -> Self {
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| rng.normal_with(0.0, std)).collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a tensor of uniform samples in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| rng.uniform(lo, hi)).collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape as a slice.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the backing buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Interprets this tensor's shape as 4-D.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 4-dimensional.
    pub fn shape4(&self) -> Shape4 {
        assert_eq!(
            self.shape.len(),
            4,
            "tensor is {}-d, not 4-d",
            self.shape.len()
        );
        Shape4::new(self.shape[0], self.shape[1], self.shape[2], self.shape[3])
    }

    /// Linear index for a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (i, (&ix, &dim)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(
                ix < dim,
                "index {ix} out of bounds for axis {i} (len {dim})"
            );
            off = off * dim + ix;
        }
        off
    }

    /// Reads an element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Writes an element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.offset(idx);
        self.data[off] = value;
    }

    /// Fast 4-D read (no rank check in release builds).
    #[inline]
    pub fn get4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        let s = self.shape4();
        self.data[s.index(n, c, h, w)]
    }

    /// Fast 4-D write (no rank check in release builds).
    #[inline]
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) {
        let s = self.shape4();
        let i = s.index(n, c, h, w);
        self.data[i] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected,
                actual: self.data.len(),
            });
        }
        self.shape = shape.to_vec();
        Ok(self)
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shape tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_map(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// `self += alpha * other` in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum element; `f32::NEG_INFINITY` for empty tensors.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element (first on ties).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Euclidean (Frobenius) norm.
    pub fn l2_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Number of non-zero elements.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// Dot product of the flattened tensors.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.data.len(), other.data.len(), "dot length mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum::<f64>() as f32
    }

    /// Elementwise approximate equality within absolute + relative tolerance.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        if self.shape != other.shape {
            return false;
        }
        self.data.iter().zip(&other.data).all(|(&a, &b)| {
            let scale = 1.0f32.max(a.abs()).max(b.abs());
            (a - b).abs() <= tol * scale
        })
    }

    /// Largest absolute elementwise difference; `None` if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Option<f32> {
        if self.shape != other.shape {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| (a - b).abs())
                .fold(0.0, f32::max),
        )
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} {{ ", self.shape)?;
        const PREVIEW: usize = 8;
        for (i, x) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.4}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", … ({} total)", self.data.len())?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        let err = Tensor::from_vec(&[2, 3], vec![0.0; 5]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            }
        );
    }

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 7.5);
        assert_eq!(t.at(&[1, 2, 3]), 7.5);
        assert_eq!(t.data()[t.offset(&[1, 2, 3])], 7.5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        t.at(&[2, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.clone().reshape(&[3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.clone().reshape(&[4, 2]).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(&[4], vec![1.0, -2.0, 3.0, 0.0]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.argmax(), 2);
        assert_eq!(t.count_nonzero(), 3);
        let expect = (1.0f32 + 4.0 + 9.0).sqrt();
        assert!((t.l2_norm() - expect).abs() < 1e-6);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::filled(&[3], 1.0);
        let b = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
        a.scale(2.0);
        assert_eq!(a.data(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn zip_map_checks_shape() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(a.zip_map(&b, |x, y| x + y).is_err());
    }

    #[test]
    fn approx_eq_tolerates_noise() {
        let a = Tensor::from_vec(&[2], vec![1.0, 100.0]).unwrap();
        let b = Tensor::from_vec(&[2], vec![1.0 + 1e-6, 100.0 + 1e-4]).unwrap();
        assert!(a.approx_eq(&b, 1e-5));
        assert!(!a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn debug_is_never_empty() {
        let t = Tensor::zeros(&[0]);
        assert!(!format!("{t:?}").is_empty());
    }
}
