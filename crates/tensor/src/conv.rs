//! Reference direct convolution.
//!
//! Every optimized executor in the workspace — dense tiled, im2col+GEMM,
//! Winograd, CSR sparse, and the four pattern-based variants — is validated
//! against [`conv2d_ref`]. It is intentionally the simplest possible 7-loop
//! nest.

use crate::shape::{conv_out_dim, Shape4};
use crate::tensor::Tensor;

/// Static geometry of a 2-D convolution: shapes, stride and padding.
///
/// # Examples
///
/// ```
/// use patdnn_tensor::Conv2dGeometry;
///
/// // VGG-16 L4: 128 filters over 128 channels, 3x3, on a 112x112 input.
/// let g = Conv2dGeometry::new(128, 128, 3, 3, 112, 112, 1, 1);
/// assert_eq!((g.out_h, g.out_w), (112, 112));
/// assert_eq!(g.macs(), 128 * 128 * 3 * 3 * 112 * 112);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Number of filters (output channels), `C_{k+1}` in the paper.
    pub out_channels: usize,
    /// Number of input channels (kernels per filter), `C_k` in the paper.
    pub in_channels: usize,
    /// Kernel height `P_k`.
    pub kernel_h: usize,
    /// Kernel width `Q_k`.
    pub kernel_w: usize,
    /// Input height `M_k`.
    pub in_h: usize,
    /// Input width `N_k`.
    pub in_w: usize,
    /// Stride `S_k` (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
    /// Output height `M_{k+1}`.
    pub out_h: usize,
    /// Output width `N_{k+1}`.
    pub out_w: usize,
}

impl Conv2dGeometry {
    /// Creates the geometry, deriving the output spatial size.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input or any
    /// dimension is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        out_channels: usize,
        in_channels: usize,
        kernel_h: usize,
        kernel_w: usize,
        in_h: usize,
        in_w: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        assert!(
            out_channels > 0 && in_channels > 0,
            "channel counts must be positive"
        );
        assert!(kernel_h > 0 && kernel_w > 0, "kernel dims must be positive");
        let out_h = conv_out_dim(in_h, kernel_h, stride, pad);
        let out_w = conv_out_dim(in_w, kernel_w, stride, pad);
        Conv2dGeometry {
            out_channels,
            in_channels,
            kernel_h,
            kernel_w,
            in_h,
            in_w,
            stride,
            pad,
            out_h,
            out_w,
        }
    }

    /// Weight tensor shape in OIHW order.
    pub fn weight_shape(&self) -> Shape4 {
        Shape4::new(
            self.out_channels,
            self.in_channels,
            self.kernel_h,
            self.kernel_w,
        )
    }

    /// Input shape for a batch of one, NCHW.
    pub fn input_shape(&self) -> Shape4 {
        Shape4::new(1, self.in_channels, self.in_h, self.in_w)
    }

    /// Output shape for a batch of one, NCHW.
    pub fn output_shape(&self) -> Shape4 {
        Shape4::new(1, self.out_channels, self.out_h, self.out_w)
    }

    /// Multiply-accumulate count of the dense layer.
    pub fn macs(&self) -> usize {
        self.out_channels
            * self.in_channels
            * self.kernel_h
            * self.kernel_w
            * self.out_h
            * self.out_w
    }

    /// Floating point operations of the dense layer (2 per MAC).
    pub fn flops(&self) -> usize {
        2 * self.macs()
    }
}

/// Direct convolution for a batch of inputs in NCHW with OIHW weights.
///
/// `bias` may be `None` for bias-free layers.
///
/// # Panics
///
/// Panics if the tensor shapes disagree with `geo` or the batch dimension
/// of `input`.
pub fn conv2d_ref(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    geo: &Conv2dGeometry,
) -> Tensor {
    let ishape = input.shape4();
    assert_eq!(ishape.c, geo.in_channels, "input channel mismatch");
    assert_eq!(ishape.h, geo.in_h, "input height mismatch");
    assert_eq!(ishape.w, geo.in_w, "input width mismatch");
    assert_eq!(
        weights.shape4(),
        geo.weight_shape(),
        "weight shape mismatch"
    );
    if let Some(b) = bias {
        assert_eq!(b.len(), geo.out_channels, "bias length mismatch");
    }

    let batch = ishape.n;
    let mut out = Tensor::zeros(&[batch, geo.out_channels, geo.out_h, geo.out_w]);
    let istride_c = geo.in_h * geo.in_w;
    let wstride_o = geo.in_channels * geo.kernel_h * geo.kernel_w;
    let wstride_i = geo.kernel_h * geo.kernel_w;
    let in_data = input.data();
    let w_data = weights.data();
    let out_hw = geo.out_h * geo.out_w;
    let out_data = out.data_mut();

    for n in 0..batch {
        let ibase = n * geo.in_channels * istride_c;
        let obase = n * geo.out_channels * out_hw;
        for oc in 0..geo.out_channels {
            let b = bias.map_or(0.0, |b| b[oc]);
            for oh in 0..geo.out_h {
                for ow in 0..geo.out_w {
                    let mut acc = b;
                    for ic in 0..geo.in_channels {
                        for kh in 0..geo.kernel_h {
                            let ih = (oh * geo.stride + kh) as isize - geo.pad as isize;
                            if ih < 0 || ih >= geo.in_h as isize {
                                continue;
                            }
                            for kw in 0..geo.kernel_w {
                                let iw = (ow * geo.stride + kw) as isize - geo.pad as isize;
                                if iw < 0 || iw >= geo.in_w as isize {
                                    continue;
                                }
                                let iv = in_data
                                    [ibase + ic * istride_c + ih as usize * geo.in_w + iw as usize];
                                let wv = w_data
                                    [oc * wstride_o + ic * wstride_i + kh * geo.kernel_w + kw];
                                acc += iv * wv;
                            }
                        }
                    }
                    out_data[obase + oc * out_hw + oh * geo.out_w + ow] = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn hand_computed_1x1_case() {
        // 1 input channel, 2x2 input, single 1x1 filter of weight 3, bias 1.
        let geo = Conv2dGeometry::new(1, 1, 1, 1, 2, 2, 1, 0);
        let input = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let weights = Tensor::from_vec(&[1, 1, 1, 1], vec![3.0]).unwrap();
        let out = conv2d_ref(&input, &weights, Some(&[1.0]), &geo);
        assert_eq!(out.data(), &[4.0, 7.0, 10.0, 13.0]);
    }

    #[test]
    fn hand_computed_3x3_same_padding() {
        // All-ones 3x3 input, all-ones 3x3 kernel, pad 1: every output counts
        // the in-bounds 3x3 neighbourhood.
        let geo = Conv2dGeometry::new(1, 1, 3, 3, 3, 3, 1, 1);
        let input = Tensor::filled(&[1, 1, 3, 3], 1.0);
        let weights = Tensor::filled(&[1, 1, 3, 3], 1.0);
        let out = conv2d_ref(&input, &weights, None, &geo);
        assert_eq!(out.data(), &[4.0, 6.0, 4.0, 6.0, 9.0, 6.0, 4.0, 6.0, 4.0]);
    }

    #[test]
    fn stride_two_downsamples() {
        let geo = Conv2dGeometry::new(1, 1, 1, 1, 4, 4, 2, 0);
        let input = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|i| i as f32).collect()).unwrap();
        let weights = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]).unwrap();
        let out = conv2d_ref(&input, &weights, None, &geo);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn batch_entries_are_independent() {
        let geo = Conv2dGeometry::new(2, 3, 3, 3, 5, 5, 1, 1);
        let mut rng = Rng::seed_from(5);
        let a = Tensor::randn(&[1, 3, 5, 5], &mut rng);
        let b = Tensor::randn(&[1, 3, 5, 5], &mut rng);
        let weights = Tensor::randn(&[2, 3, 3, 3], &mut rng);
        let mut both = Tensor::zeros(&[2, 3, 5, 5]);
        both.data_mut()[..a.len()].copy_from_slice(a.data());
        both.data_mut()[a.len()..].copy_from_slice(b.data());

        let out_a = conv2d_ref(&a, &weights, None, &geo);
        let out_b = conv2d_ref(&b, &weights, None, &geo);
        let out_both = conv2d_ref(&both, &weights, None, &geo);
        assert_eq!(&out_both.data()[..out_a.len()], out_a.data());
        assert_eq!(&out_both.data()[out_a.len()..], out_b.data());
    }

    #[test]
    fn macs_counts_multiplications() {
        let geo = Conv2dGeometry::new(64, 3, 3, 3, 224, 224, 1, 1);
        assert_eq!(geo.macs(), 64 * 3 * 9 * 224 * 224);
        assert_eq!(geo.flops(), 2 * geo.macs());
    }
}
