//! # patdnn-tensor
//!
//! Dense tensor substrate for the PatDNN reproduction.
//!
//! This crate provides the numeric foundation every other PatDNN crate builds
//! on: a contiguous row-major [`Tensor`] of `f32`, a deterministic random
//! number generator ([`rng::Rng`]), register-tiled SIMD micro-kernels with
//! runtime CPU dispatch ([`kernels`]), matrix multiplication built on them
//! ([`gemm`]), the im2col lowering used by the convolution layers
//! ([`im2col`]), Winograd `F(2x2, 3x3)` transforms used by the dense
//! baselines ([`winograd`]), and a reference direct convolution
//! ([`conv::conv2d_ref`]) that every optimized executor in the workspace is
//! validated against.
//!
//! # Examples
//!
//! ```
//! use patdnn_tensor::{Tensor, rng::Rng};
//!
//! let mut rng = Rng::seed_from(42);
//! let a = Tensor::randn(&[2, 3], &mut rng);
//! let b = a.map(|x| x * 2.0);
//! assert_eq!(b.shape(), &[2, 3]);
//! ```

pub mod conv;
pub mod gemm;
pub mod im2col;
pub mod kernels;
pub mod rng;
pub mod shape;
pub mod tensor;
pub mod winograd;

pub use conv::{conv2d_ref, Conv2dGeometry};
pub use shape::{conv_out_dim, Shape4};
pub use tensor::{Tensor, TensorError};
