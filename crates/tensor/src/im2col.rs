//! im2col / col2im lowering.
//!
//! Convolution as matrix multiplication: the input patch matrix has one
//! column per output pixel and one row per `(ic, kh, kw)` weight position.
//! This is the execution strategy of the "TVM-like" dense baseline and of
//! the training convolution layers in `patdnn-nn`.

use crate::conv::Conv2dGeometry;
use crate::tensor::Tensor;

/// Number of rows of the patch matrix: `in_channels * kernel_h * kernel_w`.
pub fn col_rows(geo: &Conv2dGeometry) -> usize {
    geo.in_channels * geo.kernel_h * geo.kernel_w
}

/// Number of columns of the patch matrix: `out_h * out_w`.
pub fn col_cols(geo: &Conv2dGeometry) -> usize {
    geo.out_h * geo.out_w
}

/// Expands one image (CHW slice) into the im2col patch matrix.
///
/// `input` must contain `in_channels * in_h * in_w` contiguous values;
/// `cols` must have room for [`col_rows`]` * `[`col_cols`] values and is
/// fully overwritten (out-of-bounds taps become zero).
///
/// # Panics
///
/// Panics if either slice is too short.
pub fn im2col(input: &[f32], geo: &Conv2dGeometry, cols: &mut [f32]) {
    let rows = col_rows(geo);
    let ncols = col_cols(geo);
    assert!(
        input.len() >= geo.in_channels * geo.in_h * geo.in_w,
        "input too short"
    );
    assert!(cols.len() >= rows * ncols, "cols buffer too short");

    for ic in 0..geo.in_channels {
        let ibase = ic * geo.in_h * geo.in_w;
        for kh in 0..geo.kernel_h {
            for kw in 0..geo.kernel_w {
                let row = (ic * geo.kernel_h + kh) * geo.kernel_w + kw;
                let rbase = row * ncols;
                for oh in 0..geo.out_h {
                    let ih = (oh * geo.stride + kh) as isize - geo.pad as isize;
                    for ow in 0..geo.out_w {
                        let iw = (ow * geo.stride + kw) as isize - geo.pad as isize;
                        let v = if ih >= 0
                            && ih < geo.in_h as isize
                            && iw >= 0
                            && iw < geo.in_w as isize
                        {
                            input[ibase + ih as usize * geo.in_w + iw as usize]
                        } else {
                            0.0
                        };
                        cols[rbase + oh * geo.out_w + ow] = v;
                    }
                }
            }
        }
    }
}

/// Scatters a patch-matrix gradient back into an image gradient (col2im).
///
/// This is the adjoint of [`im2col`]: values landing on the same input
/// pixel accumulate. `dinput` must be zeroed by the caller if it should not
/// accumulate into previous content.
///
/// # Panics
///
/// Panics if either slice is too short.
pub fn col2im(cols: &[f32], geo: &Conv2dGeometry, dinput: &mut [f32]) {
    let rows = col_rows(geo);
    let ncols = col_cols(geo);
    assert!(cols.len() >= rows * ncols, "cols buffer too short");
    assert!(
        dinput.len() >= geo.in_channels * geo.in_h * geo.in_w,
        "dinput too short"
    );

    for ic in 0..geo.in_channels {
        let ibase = ic * geo.in_h * geo.in_w;
        for kh in 0..geo.kernel_h {
            for kw in 0..geo.kernel_w {
                let row = (ic * geo.kernel_h + kh) * geo.kernel_w + kw;
                let rbase = row * ncols;
                for oh in 0..geo.out_h {
                    let ih = (oh * geo.stride + kh) as isize - geo.pad as isize;
                    if ih < 0 || ih >= geo.in_h as isize {
                        continue;
                    }
                    for ow in 0..geo.out_w {
                        let iw = (ow * geo.stride + kw) as isize - geo.pad as isize;
                        if iw < 0 || iw >= geo.in_w as isize {
                            continue;
                        }
                        dinput[ibase + ih as usize * geo.in_w + iw as usize] +=
                            cols[rbase + oh * geo.out_w + ow];
                    }
                }
            }
        }
    }
}

/// Convolution of a batched NCHW tensor via im2col + GEMM.
///
/// Numerically equivalent to [`crate::conv::conv2d_ref`]; used as a fast
/// path and as a correctness cross-check for the lowering itself.
///
/// # Panics
///
/// Panics if tensor shapes disagree with `geo`.
pub fn conv2d_im2col(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    geo: &Conv2dGeometry,
) -> Tensor {
    let ishape = input.shape4();
    assert_eq!(ishape.c, geo.in_channels, "input channel mismatch");
    assert_eq!(
        weights.shape4(),
        geo.weight_shape(),
        "weight shape mismatch"
    );
    let batch = ishape.n;
    let rows = col_rows(geo);
    let ncols = col_cols(geo);
    let mut cols = vec![0.0f32; rows * ncols];
    let mut out = Tensor::zeros(&[batch, geo.out_channels, geo.out_h, geo.out_w]);
    let in_img = geo.in_channels * geo.in_h * geo.in_w;
    let out_img = geo.out_channels * ncols;

    for n in 0..batch {
        im2col(&input.data()[n * in_img..(n + 1) * in_img], geo, &mut cols);
        let out_slice = &mut out.data_mut()[n * out_img..(n + 1) * out_img];
        crate::gemm::gemm(
            geo.out_channels,
            ncols,
            rows,
            weights.data(),
            &cols,
            out_slice,
        );
        if let Some(b) = bias {
            for oc in 0..geo.out_channels {
                for v in &mut out_slice[oc * ncols..(oc + 1) * ncols] {
                    *v += b[oc];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d_ref;
    use crate::rng::Rng;

    #[test]
    fn im2col_identity_for_1x1() {
        // With a 1x1 kernel, stride 1, no padding, im2col is the identity.
        let geo = Conv2dGeometry::new(1, 2, 1, 1, 3, 3, 1, 0);
        let input: Vec<f32> = (0..18).map(|i| i as f32).collect();
        let mut cols = vec![0.0; col_rows(&geo) * col_cols(&geo)];
        im2col(&input, &geo, &mut cols);
        assert_eq!(cols, input);
    }

    #[test]
    fn im2col_gemm_matches_reference() {
        let mut rng = Rng::seed_from(42);
        for &(oc, ic, k, hw, stride, pad) in &[
            (4, 3, 3, 8, 1, 1),
            (2, 5, 3, 7, 2, 1),
            (3, 2, 1, 6, 1, 0),
            (2, 2, 5, 9, 1, 2),
        ] {
            let geo = Conv2dGeometry::new(oc, ic, k, k, hw, hw, stride, pad);
            let input = Tensor::randn(&[2, ic, hw, hw], &mut rng);
            let weights = Tensor::randn(&[oc, ic, k, k], &mut rng);
            let bias: Vec<f32> = (0..oc).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let r = conv2d_ref(&input, &weights, Some(&bias), &geo);
            let c = conv2d_im2col(&input, &weights, Some(&bias), &geo);
            assert!(
                r.approx_eq(&c, 1e-4),
                "mismatch for oc={oc} ic={ic} k={k} hw={hw} s={stride} p={pad}: {:?}",
                r.max_abs_diff(&c)
            );
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for arbitrary x, y.
        let geo = Conv2dGeometry::new(1, 3, 3, 3, 6, 6, 2, 1);
        let mut rng = Rng::seed_from(17);
        let x: Vec<f32> = (0..3 * 36).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let rows = col_rows(&geo);
        let ncols = col_cols(&geo);
        let y: Vec<f32> = (0..rows * ncols).map(|_| rng.uniform(-1.0, 1.0)).collect();

        let mut cols = vec![0.0; rows * ncols];
        im2col(&x, &geo, &mut cols);
        let lhs: f64 = cols
            .iter()
            .zip(&y)
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();

        let mut back = vec![0.0; x.len()];
        col2im(&y, &geo, &mut back);
        let rhs: f64 = x
            .iter()
            .zip(&back)
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();

        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn padding_region_is_zero() {
        let geo = Conv2dGeometry::new(1, 1, 3, 3, 2, 2, 1, 1);
        let input = vec![1.0; 4];
        let mut cols = vec![f32::NAN; col_rows(&geo) * col_cols(&geo)];
        im2col(&input, &geo, &mut cols);
        // Top-left output pixel, kernel tap (0,0) reads the padding.
        assert_eq!(cols[0], 0.0);
        assert!(cols.iter().all(|v| !v.is_nan()), "buffer fully written");
    }
}
