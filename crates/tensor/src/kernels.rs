//! Register-tiled SIMD micro-kernels with runtime CPU dispatch.
//!
//! Every hot inner loop in the workspace — the f32 pattern-conv LRE
//! spans, the im2col GEMM, the FC heads, and the INT8 accumulators —
//! bottoms out in one of the primitives here. The module follows the
//! `PackedConv`/`ConvKer` split of production inference runtimes: the
//! *layout* (panel packing, tile sizes) is fixed and variant-independent
//! so weights can be packed once at artifact load, while the *arithmetic*
//! is selected at runtime between an AVX2/FMA implementation (guarded by
//! `is_x86_feature_detected!`) and a portable fallback that is always
//! compiled and tested on every platform.
//!
//! Dispatch is resolved once per process and cached. Setting the
//! environment variable `PATDNN_FORCE_PORTABLE=1` (before first use)
//! pins the portable kernels even on AVX2 hardware, which is how CI
//! keeps the fallback from rotting.
//!
//! The f32 GEMM micro-kernel computes an `MR`×`NR` register tile
//! (`4×16`: eight YMM accumulators on AVX2) over packed panels; callers
//! drive it over full tiles directly and over ragged right/bottom
//! fringes through a zero-padded stack tile, so no shape constraint
//! leaks out of this module. The INT8 kernels are exact: both variants
//! produce bit-identical `i32` accumulations (integer arithmetic is
//! associative), which the artifact equivalence tests rely on.

use std::sync::OnceLock;

/// Rows of the register tile (A-panel height).
pub const MR: usize = 4;
/// Columns of the register tile (B-panel width, two 8-lane YMM vectors).
pub const NR: usize = 16;
/// Column width of the packed INT8 right-hand-side panels.
pub const NR_I8: usize = 16;

/// Which arithmetic implementation backs the kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelVariant {
    /// AVX2 + FMA intrinsics (x86-64 only, runtime-detected).
    Avx2,
    /// Portable scalar loops (always available, autovectorizer-friendly).
    Portable,
}

impl KernelVariant {
    /// Short label for reports and plan dumps.
    pub fn label(&self) -> &'static str {
        match self {
            KernelVariant::Avx2 => "avx2",
            KernelVariant::Portable => "portable",
        }
    }
}

/// One register-tiled arithmetic implementation.
///
/// All methods are safe to call on any input: implementations carry
/// their own feature guarantees (an [`KernelVariant::Avx2`] kernel is
/// only ever handed out after runtime detection succeeded).
pub trait MicroKernel: Sync {
    /// Which variant this kernel implements.
    fn variant(&self) -> KernelVariant;

    /// `acc[r * NR + j] = sum_k ap[k*MR + r] * bp[k*NR + j]` — one full
    /// `MR`×`NR` f32 register tile over packed panels. `ap` must hold
    /// `k * MR` values, `bp` must hold `k * NR`.
    fn tile_f32(&self, k: usize, ap: &[f32], bp: &[f32], acc: &mut [f32; MR * NR]);

    /// `y[i] += a * x[i]` over equal-length f32 spans.
    fn axpy_f32(&self, a: f32, x: &[f32], y: &mut [f32]);

    /// Dot product of two equal-length f32 spans.
    fn dot_f32(&self, x: &[f32], y: &[f32]) -> f32;

    /// `y[i] += a * x[i] as i32` over equal-length spans. Exact.
    fn axpy_i8(&self, a: i32, x: &[i8], y: &mut [i32]);

    /// Exact `i8×i8→i32` dot product of two equal-length spans.
    fn dot_i8(&self, x: &[i8], y: &[i8]) -> i32;

    /// `out[j] += sum_k x[k] * W[j][k]` for `j in 0..n` over a packed
    /// INT8 weight panel (see [`pack_b_t_i8`]). Exact. `x` must hold
    /// `k` values and `out` must hold `n`.
    fn gemv_i8(&self, n: usize, k: usize, x: &[i8], bp: &[i8], out: &mut [i32]);
}

/// The portable fallback: plain loops, no intrinsics, compiled and
/// tested on every platform.
pub struct PortableKernel;

impl MicroKernel for PortableKernel {
    fn variant(&self) -> KernelVariant {
        KernelVariant::Portable
    }

    fn tile_f32(&self, k: usize, ap: &[f32], bp: &[f32], acc: &mut [f32; MR * NR]) {
        debug_assert!(ap.len() >= k * MR && bp.len() >= k * NR);
        for kk in 0..k {
            let a = &ap[kk * MR..kk * MR + MR];
            let b = &bp[kk * NR..kk * NR + NR];
            for r in 0..MR {
                let av = a[r];
                let row = &mut acc[r * NR..(r + 1) * NR];
                for j in 0..NR {
                    row[j] += av * b[j];
                }
            }
        }
    }

    fn axpy_f32(&self, a: f32, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), y.len());
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += a * xi;
        }
    }

    fn dot_f32(&self, x: &[f32], y: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), y.len());
        // Four split accumulators: better ILP than a serial sum and a
        // stable, shape-independent summation order.
        let mut acc = [0.0f32; 4];
        let mut chunks = x.chunks_exact(4).zip(y.chunks_exact(4));
        for (cx, cy) in &mut chunks {
            for i in 0..4 {
                acc[i] += cx[i] * cy[i];
            }
        }
        let rx = &x[x.len() - x.len() % 4..];
        let ry = &y[y.len() - y.len() % 4..];
        for (i, (&a, &b)) in rx.iter().zip(ry).enumerate() {
            acc[i] += a * b;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3])
    }

    fn axpy_i8(&self, a: i32, x: &[i8], y: &mut [i32]) {
        debug_assert_eq!(x.len(), y.len());
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += a * xi as i32;
        }
    }

    fn dot_i8(&self, x: &[i8], y: &[i8]) -> i32 {
        debug_assert_eq!(x.len(), y.len());
        x.iter().zip(y).map(|(&a, &b)| a as i32 * b as i32).sum()
    }

    fn gemv_i8(&self, n: usize, k: usize, x: &[i8], bp: &[i8], out: &mut [i32]) {
        let kp = k.div_ceil(2);
        for (q, chunk) in out[..n].chunks_mut(NR_I8).enumerate() {
            let panel = &bp[q * kp * NR_I8 * 2..(q + 1) * kp * NR_I8 * 2];
            for p in 0..kp {
                let x0 = x[2 * p] as i32;
                let x1 = if 2 * p + 1 < k {
                    x[2 * p + 1] as i32
                } else {
                    0
                };
                let row = &panel[p * NR_I8 * 2..(p + 1) * NR_I8 * 2];
                for (j, o) in chunk.iter_mut().enumerate() {
                    *o += x0 * row[2 * j] as i32 + x1 * row[2 * j + 1] as i32;
                }
            }
        }
    }
}

/// The AVX2 + FMA implementation. Only constructed after runtime
/// feature detection succeeded, which is what makes the `unsafe`
/// `target_feature` calls inside sound.
#[cfg(target_arch = "x86_64")]
pub struct Avx2Kernel {
    _private: (),
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The intrinsic bodies. Every function is `target_feature(enable =
    //! "avx2,fma")` and therefore unsafe to call; [`super::Avx2Kernel`]
    //! is the only caller and exists only when detection succeeded.

    use super::{MR, NR, NR_I8};
    use core::arch::x86_64::*;

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn tile_f32(k: usize, ap: &[f32], bp: &[f32], acc: &mut [f32; MR * NR]) {
        debug_assert!(ap.len() >= k * MR && bp.len() >= k * NR);
        let mut c = [_mm256_setzero_ps(); 2 * MR];
        let mut a = ap.as_ptr();
        let mut b = bp.as_ptr();
        for _ in 0..k {
            let b0 = _mm256_loadu_ps(b);
            let b1 = _mm256_loadu_ps(b.add(8));
            for r in 0..MR {
                let av = _mm256_broadcast_ss(&*a.add(r));
                c[2 * r] = _mm256_fmadd_ps(av, b0, c[2 * r]);
                c[2 * r + 1] = _mm256_fmadd_ps(av, b1, c[2 * r + 1]);
            }
            a = a.add(MR);
            b = b.add(NR);
        }
        for r in 0..MR {
            let dst = acc.as_mut_ptr().add(r * NR);
            _mm256_storeu_ps(dst, _mm256_add_ps(c[2 * r], _mm256_loadu_ps(dst)));
            _mm256_storeu_ps(
                dst.add(8),
                _mm256_add_ps(c[2 * r + 1], _mm256_loadu_ps(dst.add(8))),
            );
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy_f32(a: f32, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let av = _mm256_set1_ps(a);
        let mut i = 0;
        while i + 8 <= n {
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_fmadd_ps(av, xv, yv));
            i += 8;
        }
        while i < n {
            *y.get_unchecked_mut(i) += a * *x.get_unchecked(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_f32(x: &[f32], y: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= n {
            acc0 = _mm256_fmadd_ps(
                _mm256_loadu_ps(x.as_ptr().add(i)),
                _mm256_loadu_ps(y.as_ptr().add(i)),
                acc0,
            );
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(x.as_ptr().add(i + 8)),
                _mm256_loadu_ps(y.as_ptr().add(i + 8)),
                acc1,
            );
            i += 16;
        }
        while i + 8 <= n {
            acc0 = _mm256_fmadd_ps(
                _mm256_loadu_ps(x.as_ptr().add(i)),
                _mm256_loadu_ps(y.as_ptr().add(i)),
                acc0,
            );
            i += 8;
        }
        let acc = _mm256_add_ps(acc0, acc1);
        let hi = _mm256_extractf128_ps(acc, 1);
        let lo = _mm256_castps256_ps128(acc);
        let s4 = _mm_add_ps(lo, hi);
        let s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
        let s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 1));
        let mut sum = _mm_cvtss_f32(s1);
        while i < n {
            sum += *x.get_unchecked(i) * *y.get_unchecked(i);
            i += 1;
        }
        sum
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_i8(a: i32, x: &[i8], y: &mut [i32]) {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let av = _mm256_set1_epi32(a);
        let mut i = 0;
        while i + 8 <= n {
            // Sign-extend 8 i8 taps to i32 lanes, multiply, accumulate.
            let xv = _mm256_cvtepi8_epi32(_mm_loadl_epi64(x.as_ptr().add(i) as *const __m128i));
            let yv = _mm256_loadu_si256(y.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                y.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_add_epi32(yv, _mm256_mullo_epi32(av, xv)),
            );
            i += 8;
        }
        while i < n {
            *y.get_unchecked_mut(i) += a * *x.get_unchecked(i) as i32;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8(x: &[i8], y: &[i8]) -> i32 {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 16 <= n {
            // 16 i8 → 16 i16 each side, then madd pairs into 8 i32.
            // |i16 product| ≤ 128², so one pairwise add never overflows.
            let xv = _mm256_cvtepi8_epi16(_mm_loadu_si128(x.as_ptr().add(i) as *const __m128i));
            let yv = _mm256_cvtepi8_epi16(_mm_loadu_si128(y.as_ptr().add(i) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xv, yv));
            i += 16;
        }
        let mut sum = hsum_epi32(acc);
        while i < n {
            sum += *x.get_unchecked(i) as i32 * *y.get_unchecked(i) as i32;
            i += 1;
        }
        sum
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn gemv_i8(n: usize, k: usize, x: &[i8], bp: &[i8], out: &mut [i32]) {
        let kp = k.div_ceil(2);
        let panels = n.div_ceil(NR_I8);
        for q in 0..panels {
            let panel = bp.as_ptr().add(q * kp * NR_I8 * 2);
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            for p in 0..kp {
                let x0 = *x.get_unchecked(2 * p) as i16 as u16 as u32;
                let x1 = if 2 * p + 1 < k {
                    *x.get_unchecked(2 * p + 1) as i16 as u16 as u32
                } else {
                    0
                };
                let xp = _mm256_set1_epi32(((x1 << 16) | x0) as i32);
                let row = panel.add(p * NR_I8 * 2);
                // Each 16-byte load covers 8 columns as (k, k+1) i8
                // pairs; widening to i16 keeps madd's pair structure.
                let w0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(row as *const __m128i));
                let w1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(row.add(16) as *const __m128i));
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(w0, xp));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(w1, xp));
            }
            let mut tile = [0i32; NR_I8];
            _mm256_storeu_si256(tile.as_mut_ptr() as *mut __m256i, acc0);
            _mm256_storeu_si256(tile.as_mut_ptr().add(8) as *mut __m256i, acc1);
            let lo = q * NR_I8;
            for (j, &t) in tile.iter().enumerate().take(n - lo.min(n)).take(NR_I8) {
                *out.get_unchecked_mut(lo + j) += t;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi32(v: __m256i) -> i32 {
        let hi = _mm256_extracti128_si256(v, 1);
        let lo = _mm256_castsi256_si128(v);
        let s4 = _mm_add_epi32(lo, hi);
        let s2 = _mm_add_epi32(s4, _mm_unpackhi_epi64(s4, s4));
        let s1 = _mm_add_epi32(s2, _mm_shuffle_epi32(s2, 1));
        _mm_cvtsi128_si32(s1)
    }
}

#[cfg(target_arch = "x86_64")]
impl MicroKernel for Avx2Kernel {
    fn variant(&self) -> KernelVariant {
        KernelVariant::Avx2
    }

    fn tile_f32(&self, k: usize, ap: &[f32], bp: &[f32], acc: &mut [f32; MR * NR]) {
        // SAFETY: Avx2Kernel is only handed out after runtime detection.
        unsafe { avx2::tile_f32(k, ap, bp, acc) }
    }

    fn axpy_f32(&self, a: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), y.len());
        // SAFETY: as above.
        unsafe { avx2::axpy_f32(a, x, y) }
    }

    fn dot_f32(&self, x: &[f32], y: &[f32]) -> f32 {
        assert_eq!(x.len(), y.len());
        // SAFETY: as above.
        unsafe { avx2::dot_f32(x, y) }
    }

    fn axpy_i8(&self, a: i32, x: &[i8], y: &mut [i32]) {
        assert_eq!(x.len(), y.len());
        // SAFETY: as above.
        unsafe { avx2::axpy_i8(a, x, y) }
    }

    fn dot_i8(&self, x: &[i8], y: &[i8]) -> i32 {
        assert_eq!(x.len(), y.len());
        // SAFETY: as above.
        unsafe { avx2::dot_i8(x, y) }
    }

    fn gemv_i8(&self, n: usize, k: usize, x: &[i8], bp: &[i8], out: &mut [i32]) {
        assert!(x.len() >= k && out.len() >= n);
        assert!(bp.len() >= n.div_ceil(NR_I8) * k.div_ceil(2) * NR_I8 * 2);
        // SAFETY: as above, plus the bounds asserted here.
        unsafe { avx2::gemv_i8(n, k, x, bp, out) }
    }
}

static PORTABLE: PortableKernel = PortableKernel;
#[cfg(target_arch = "x86_64")]
static AVX2: Avx2Kernel = Avx2Kernel { _private: () };

static ACTIVE: OnceLock<KernelVariant> = OnceLock::new();

/// The variant the dispatched entry points resolve to, decided once per
/// process: `PATDNN_FORCE_PORTABLE` (any value but `0`/empty) pins the
/// portable kernels; otherwise AVX2+FMA is used when the CPU has it.
pub fn active_variant() -> KernelVariant {
    *ACTIVE.get_or_init(|| {
        let forced =
            std::env::var_os("PATDNN_FORCE_PORTABLE").is_some_and(|v| !v.is_empty() && v != "0");
        if forced {
            return KernelVariant::Portable;
        }
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return KernelVariant::Avx2;
        }
        KernelVariant::Portable
    })
}

/// The kernel backing `variant`, or `None` when this machine cannot run
/// it (requesting AVX2 on a CPU without it). The portable kernel is
/// always available.
pub fn kernel_for(variant: KernelVariant) -> Option<&'static dyn MicroKernel> {
    match variant {
        KernelVariant::Portable => Some(&PORTABLE),
        KernelVariant::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return Some(&AVX2);
            }
            None
        }
    }
}

/// Every variant this machine can run, portable first. Property tests
/// iterate this so the AVX2 path is exercised wherever possible without
/// failing on machines that lack it.
pub fn available_variants() -> Vec<KernelVariant> {
    let mut v = vec![KernelVariant::Portable];
    if kernel_for(KernelVariant::Avx2).is_some() {
        v.push(KernelVariant::Avx2);
    }
    v
}

/// The dispatched kernel (see [`active_variant`]).
pub fn active_kernel() -> &'static dyn MicroKernel {
    kernel_for(active_variant()).unwrap_or(&PORTABLE)
}

/// `y += a * x` with the dispatched kernel.
pub fn axpy_f32(a: f32, x: &[f32], y: &mut [f32]) {
    active_kernel().axpy_f32(a, x, y);
}

/// Dispatched f32 dot product.
pub fn dot_f32(x: &[f32], y: &[f32]) -> f32 {
    active_kernel().dot_f32(x, y)
}

/// `y += a * (x as i32)` with the dispatched kernel. Exact.
pub fn axpy_i8(a: i32, x: &[i8], y: &mut [i32]) {
    active_kernel().axpy_i8(a, x, y);
}

/// Dispatched exact `i8×i8→i32` dot product.
pub fn dot_i8(x: &[i8], y: &[i8]) -> i32 {
    active_kernel().dot_i8(x, y)
}

// ---------------------------------------------------------------------
// Panel packing. The layouts are variant-independent (both kernels read
// the same bytes), so packing once at artifact load serves whichever
// arithmetic dispatch selects.
// ---------------------------------------------------------------------

/// Length of the packed A buffer for an `m`×`k` left operand.
pub fn packed_a_len(m: usize, k: usize) -> usize {
    m.div_ceil(MR) * MR * k
}

/// Length of the packed B buffer for a `k`×`n` right operand.
pub fn packed_b_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * NR * k
}

/// Packs row-major `m`×`k` `a` (row stride `lda`) into `MR`-row panels,
/// k-major inside each panel; short bottom panels are zero-padded.
pub fn pack_a_f32(m: usize, k: usize, a: &[f32], lda: usize, out: &mut [f32]) {
    assert!(out.len() >= packed_a_len(m, k), "packed A buffer too short");
    for p in 0..m.div_ceil(MR) {
        let base = p * MR * k;
        for kk in 0..k {
            for r in 0..MR {
                let row = p * MR + r;
                out[base + kk * MR + r] = if row < m { a[row * lda + kk] } else { 0.0 };
            }
        }
    }
}

/// Packs row-major `k`×`n` `b` (row stride `ldb`) into `NR`-column
/// panels, k-major inside each panel; short right panels are
/// zero-padded.
pub fn pack_b_f32(k: usize, n: usize, b: &[f32], ldb: usize, out: &mut [f32]) {
    assert!(out.len() >= packed_b_len(k, n), "packed B buffer too short");
    for q in 0..n.div_ceil(NR) {
        let base = q * NR * k;
        for kk in 0..k {
            for j in 0..NR {
                let col = q * NR + j;
                out[base + kk * NR + j] = if col < n { b[kk * ldb + col] } else { 0.0 };
            }
        }
    }
}

/// Packs a *transposed* right operand — `bt` stored row-major `n`×`k`
/// (each row is one output column's weights, the FC layout) — into the
/// same panel form as [`pack_b_f32`].
pub fn pack_b_t_f32(k: usize, n: usize, bt: &[f32], ldb: usize, out: &mut [f32]) {
    assert!(out.len() >= packed_b_len(k, n), "packed B buffer too short");
    for q in 0..n.div_ceil(NR) {
        let base = q * NR * k;
        for kk in 0..k {
            for j in 0..NR {
                let col = q * NR + j;
                out[base + kk * NR + j] = if col < n { bt[col * ldb + kk] } else { 0.0 };
            }
        }
    }
}

/// Length of the packed INT8 right-hand panel for an `n`×`k` transposed
/// operand (the quantized-FC layout).
pub fn packed_b_i8_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR_I8) * k.div_ceil(2) * NR_I8 * 2
}

/// Packs transposed `n`×`k` i8 weights into `NR_I8`-column panels with
/// `(k, k+1)` taps interleaved per column — the layout AVX2's
/// `madd_epi16` consumes directly. Odd-`k` tails and short right panels
/// are zero-padded.
pub fn pack_b_t_i8(k: usize, n: usize, bt: &[i8], out: &mut [i8]) {
    assert!(
        out.len() >= packed_b_i8_len(k, n),
        "packed i8 buffer too short"
    );
    let kp = k.div_ceil(2);
    for q in 0..n.div_ceil(NR_I8) {
        let base = q * kp * NR_I8 * 2;
        for p in 0..kp {
            for j in 0..NR_I8 {
                let col = q * NR_I8 + j;
                for t in 0..2 {
                    let kk = 2 * p + t;
                    out[base + (p * NR_I8 + j) * 2 + t] = if col < n && kk < k {
                        bt[col * k + kk]
                    } else {
                        0
                    };
                }
            }
        }
    }
}

/// `C += Ap · Bp` over packed panels: `c` is row-major `m`×`n` with row
/// stride `ldc`. Full tiles accumulate straight into `c`; ragged
/// right/bottom fringes go through a stack tile so the kernels never
/// see a partial shape.
pub fn gemm_packed_f32(
    kernel: &dyn MicroKernel,
    m: usize,
    n: usize,
    k: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
) {
    assert!(ap.len() >= packed_a_len(m, k), "packed A too short");
    assert!(bp.len() >= packed_b_len(k, n), "packed B too short");
    for p in 0..m.div_ceil(MR) {
        let a_panel = &ap[p * MR * k..(p + 1) * MR * k];
        let mh = MR.min(m - p * MR);
        for q in 0..n.div_ceil(NR) {
            let b_panel = &bp[q * NR * k..(q + 1) * NR * k];
            let nw = NR.min(n - q * NR);
            let mut tile = [0.0f32; MR * NR];
            kernel.tile_f32(k, a_panel, b_panel, &mut tile);
            for r in 0..mh {
                let dst = &mut c[(p * MR + r) * ldc + q * NR..];
                for j in 0..nw {
                    dst[j] += tile[r * NR + j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn kernels() -> Vec<&'static dyn MicroKernel> {
        available_variants()
            .into_iter()
            .map(|v| kernel_for(v).expect("listed variants are available"))
            .collect()
    }

    #[test]
    fn portable_is_always_available() {
        assert!(available_variants().contains(&KernelVariant::Portable));
        assert_eq!(
            kernel_for(KernelVariant::Portable)
                .expect("portable")
                .variant(),
            KernelVariant::Portable
        );
    }

    #[test]
    fn axpy_and_dot_match_naive_on_awkward_lengths() {
        let mut rng = Rng::seed_from(11);
        for kernel in kernels() {
            for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 100] {
                let x: Vec<f32> = (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect();
                let y0: Vec<f32> = (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect();
                let a = rng.uniform(-2.0, 2.0);
                let mut y = y0.clone();
                kernel.axpy_f32(a, &x, &mut y);
                for i in 0..len {
                    let want = y0[i] + a * x[i];
                    assert!(
                        (y[i] - want).abs() < 1e-5,
                        "{} axpy len {len} lane {i}",
                        kernel.variant().label()
                    );
                }
                let d = kernel.dot_f32(&x, &y0);
                let want: f32 = x.iter().zip(&y0).map(|(a, b)| a * b).sum();
                assert!(
                    (d - want).abs() < 1e-3,
                    "{} dot len {len}: {d} vs {want}",
                    kernel.variant().label()
                );
            }
        }
    }

    #[test]
    fn integer_axpy_and_dot_are_exact_across_variants() {
        let mut rng = Rng::seed_from(12);
        for kernel in kernels() {
            for len in [0usize, 1, 2, 7, 15, 16, 17, 33, 127] {
                let x: Vec<i8> = (0..len).map(|_| rng.below(255) as i8).collect();
                let y: Vec<i8> = (0..len).map(|_| rng.below(255) as i8).collect();
                let want: i32 = x.iter().zip(&y).map(|(&a, &b)| a as i32 * b as i32).sum();
                assert_eq!(
                    kernel.dot_i8(&x, &y),
                    want,
                    "{} dot_i8 len {len}",
                    kernel.variant().label()
                );
                let mut acc = vec![5i32; len];
                kernel.axpy_i8(-117, &x, &mut acc);
                for i in 0..len {
                    assert_eq!(acc[i], 5 - 117 * x[i] as i32);
                }
            }
        }
    }

    #[test]
    fn packed_tile_gemm_matches_naive_on_fringe_shapes() {
        let mut rng = Rng::seed_from(13);
        for kernel in kernels() {
            for &(m, n, k) in &[
                (1usize, 1usize, 1usize),
                (3, 5, 7),
                (4, 16, 8),
                (5, 17, 9),
                (8, 32, 16),
                (7, 33, 31),
                (13, 19, 23),
            ] {
                let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(-1.0, 1.0)).collect();
                let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
                let mut ap = vec![0.0; packed_a_len(m, k)];
                let mut bp = vec![0.0; packed_b_len(k, n)];
                pack_a_f32(m, k, &a, k, &mut ap);
                pack_b_f32(k, n, &b, n, &mut bp);
                let mut c = vec![0.5f32; m * n];
                gemm_packed_f32(kernel, m, n, k, &ap, &bp, &mut c, n);
                for i in 0..m {
                    for j in 0..n {
                        let want: f32 =
                            0.5 + (0..k).map(|kk| a[i * k + kk] * b[kk * n + j]).sum::<f32>();
                        assert!(
                            (c[i * n + j] - want).abs() < 1e-4,
                            "{} {m}x{n}x{k} at ({i},{j}): {} vs {want}",
                            kernel.variant().label(),
                            c[i * n + j]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn packed_i8_gemv_is_exact_on_odd_shapes() {
        let mut rng = Rng::seed_from(14);
        for kernel in kernels() {
            for &(n, k) in &[
                (1usize, 1usize),
                (2, 3),
                (16, 8),
                (17, 9),
                (10, 100),
                (33, 257),
            ] {
                let w: Vec<i8> = (0..n * k).map(|_| rng.below(255) as i8).collect();
                let x: Vec<i8> = (0..k).map(|_| rng.below(255) as i8).collect();
                let mut bp = vec![0i8; packed_b_i8_len(k, n)];
                pack_b_t_i8(k, n, &w, &mut bp);
                let mut out = vec![7i32; n];
                kernel.gemv_i8(n, k, &x, &bp, &mut out);
                for j in 0..n {
                    let want: i32 = 7
                        + (0..k)
                            .map(|kk| x[kk] as i32 * w[j * k + kk] as i32)
                            .sum::<i32>();
                    assert_eq!(
                        out[j],
                        want,
                        "{} gemv n={n} k={k} row {j}",
                        kernel.variant().label()
                    );
                }
            }
        }
    }

    #[test]
    fn variant_labels_are_distinct() {
        assert_ne!(KernelVariant::Avx2.label(), KernelVariant::Portable.label());
    }
}
