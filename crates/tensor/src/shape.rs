//! Shape helpers for 4-D (NCHW / OIHW) tensors.

use std::fmt;

/// A 4-dimensional shape in `(n, c, h, w)` order.
///
/// For activations the axes are batch / channels / height / width; for
/// convolution weights they are out-channels / in-channels / kernel-height /
/// kernel-width (OIHW), matching the paper's `[#output channel, #input
/// channel, kernel height, kernel width]` filter-shape notation (Table 6).
///
/// # Examples
///
/// ```
/// use patdnn_tensor::Shape4;
///
/// let s = Shape4::new(1, 64, 56, 56);
/// assert_eq!(s.len(), 64 * 56 * 56);
/// assert_eq!(s.index(0, 1, 0, 0), 56 * 56);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape4 {
    /// Batch size (or output-channel count for weights).
    pub n: usize,
    /// Channel count (or input-channel count for weights).
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl Shape4 {
    /// Creates a new shape.
    pub fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape4 { n, c, h, w }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Returns `true` if the shape contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major linear index of `(n, c, h, w)`.
    #[inline]
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// The shape as a `[n, c, h, w]` slice-compatible array.
    pub fn dims(&self) -> [usize; 4] {
        [self.n, self.c, self.h, self.w]
    }
}

impl From<[usize; 4]> for Shape4 {
    fn from(d: [usize; 4]) -> Self {
        Shape4::new(d[0], d[1], d[2], d[3])
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}, {}, {}]", self.n, self.c, self.h, self.w)
    }
}

/// Computes an output spatial dimension of a convolution or pooling layer.
///
/// Uses the standard floor formula `(input + 2*pad - kernel) / stride + 1`.
///
/// # Panics
///
/// Panics if `stride == 0` or if the kernel does not fit in the padded input.
///
/// # Examples
///
/// ```
/// use patdnn_tensor::conv_out_dim;
///
/// // A 3x3/stride-1 convolution with padding 1 preserves size.
/// assert_eq!(conv_out_dim(224, 3, 1, 1), 224);
/// // VGG pooling halves it.
/// assert_eq!(conv_out_dim(224, 2, 2, 0), 112);
/// ```
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let padded = input + 2 * pad;
    assert!(
        padded >= kernel,
        "kernel {kernel} does not fit in padded input {padded}"
    );
    (padded - kernel) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_row_major() {
        let s = Shape4::new(2, 3, 4, 5);
        let mut expect = 0;
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..4 {
                    for w in 0..5 {
                        assert_eq!(s.index(n, c, h, w), expect);
                        expect += 1;
                    }
                }
            }
        }
        assert_eq!(expect, s.len());
    }

    #[test]
    fn out_dim_matches_known_shapes() {
        // VGG-16 conv: 3x3 stride 1 pad 1 preserves spatial size.
        assert_eq!(conv_out_dim(56, 3, 1, 1), 56);
        // ResNet-50 stem: 7x7 stride 2 pad 3 on 224 -> 112.
        assert_eq!(conv_out_dim(224, 7, 2, 3), 112);
        // 1x1 stride 2 downsample.
        assert_eq!(conv_out_dim(56, 1, 2, 0), 28);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_kernel_panics() {
        conv_out_dim(2, 5, 1, 0);
    }

    #[test]
    fn display_formats_like_paper() {
        assert_eq!(Shape4::new(64, 3, 3, 3).to_string(), "[64, 3, 3, 3]");
    }
}
