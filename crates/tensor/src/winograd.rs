//! Winograd `F(2x2, 3x3)` fast convolution.
//!
//! The paper's dense baselines (and MNN in particular) use Winograd for
//! 3×3/stride-1 layers; PatDNN's evaluation explicitly turns it on for "all
//! dense runs" and off for the apples-to-apples GFLOPS study (Fig. 17).
//! This module implements the standard `F(2x2, 3x3)` algorithm: each 4×4
//! input tile produces a 2×2 output tile using 16 multiplications instead
//! of 36.

use crate::conv::Conv2dGeometry;
use crate::tensor::Tensor;

/// Transforms a 3×3 kernel `g` into the 4×4 Winograd domain: `G g Gᵀ`.
pub fn transform_kernel(g: &[f32; 9]) -> [f32; 16] {
    // G = [[1, 0, 0], [1/2, 1/2, 1/2], [1/2, -1/2, 1/2], [0, 0, 1]]
    // t = G g  (4x3)
    let mut t = [0.0f32; 12];
    for col in 0..3 {
        let g0 = g[col];
        let g1 = g[3 + col];
        let g2 = g[6 + col];
        t[col] = g0;
        t[3 + col] = 0.5 * (g0 + g1 + g2);
        t[6 + col] = 0.5 * (g0 - g1 + g2);
        t[9 + col] = g2;
    }
    // u = t Gᵀ (4x4)
    let mut u = [0.0f32; 16];
    for row in 0..4 {
        let t0 = t[row * 3];
        let t1 = t[row * 3 + 1];
        let t2 = t[row * 3 + 2];
        u[row * 4] = t0;
        u[row * 4 + 1] = 0.5 * (t0 + t1 + t2);
        u[row * 4 + 2] = 0.5 * (t0 - t1 + t2);
        u[row * 4 + 3] = t2;
    }
    u
}

/// Transforms a 4×4 input tile `d` into the Winograd domain: `Bᵀ d B`.
pub fn transform_input(d: &[f32; 16]) -> [f32; 16] {
    // Bᵀ = [[1,0,-1,0], [0,1,1,0], [0,-1,1,0], [0,1,0,-1]]
    // t = Bᵀ d (4x4)
    let mut t = [0.0f32; 16];
    for col in 0..4 {
        let d0 = d[col];
        let d1 = d[4 + col];
        let d2 = d[8 + col];
        let d3 = d[12 + col];
        t[col] = d0 - d2;
        t[4 + col] = d1 + d2;
        t[8 + col] = d2 - d1;
        t[12 + col] = d1 - d3;
    }
    // v = t B (4x4); B = (Bᵀ)ᵀ, so v[r][c] applies the same combination on columns.
    let mut v = [0.0f32; 16];
    for row in 0..4 {
        let t0 = t[row * 4];
        let t1 = t[row * 4 + 1];
        let t2 = t[row * 4 + 2];
        let t3 = t[row * 4 + 3];
        v[row * 4] = t0 - t2;
        v[row * 4 + 1] = t1 + t2;
        v[row * 4 + 2] = t2 - t1;
        v[row * 4 + 3] = t1 - t3;
    }
    v
}

/// Maps an elementwise-product tile back to the 2×2 output: `Aᵀ m A`.
pub fn transform_output(m: &[f32; 16]) -> [f32; 4] {
    // Aᵀ = [[1,1,1,0], [0,1,-1,-1]]
    // t = Aᵀ m (2x4)
    let mut t = [0.0f32; 8];
    for col in 0..4 {
        let m0 = m[col];
        let m1 = m[4 + col];
        let m2 = m[8 + col];
        let m3 = m[12 + col];
        t[col] = m0 + m1 + m2;
        t[4 + col] = m1 - m2 - m3;
    }
    // y = t A (2x2)
    let mut y = [0.0f32; 4];
    for row in 0..2 {
        let t0 = t[row * 4];
        let t1 = t[row * 4 + 1];
        let t2 = t[row * 4 + 2];
        let t3 = t[row * 4 + 3];
        y[row * 2] = t0 + t1 + t2;
        y[row * 2 + 1] = t1 - t2 - t3;
    }
    y
}

/// Winograd convolution for 3×3, stride-1 layers (any padding).
///
/// Handles ragged right/bottom edges by zero-extending the virtual padded
/// input; results match [`crate::conv::conv2d_ref`] to FP tolerance.
///
/// # Panics
///
/// Panics if `geo` is not a 3×3 stride-1 convolution or shapes disagree.
pub fn conv2d_winograd(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    geo: &Conv2dGeometry,
) -> Tensor {
    assert_eq!(
        (geo.kernel_h, geo.kernel_w),
        (3, 3),
        "winograd requires 3x3 kernels"
    );
    assert_eq!(geo.stride, 1, "winograd requires stride 1");
    let ishape = input.shape4();
    assert_eq!(ishape.c, geo.in_channels, "input channel mismatch");
    assert_eq!(
        weights.shape4(),
        geo.weight_shape(),
        "weight shape mismatch"
    );

    let batch = ishape.n;
    let mut out = Tensor::zeros(&[batch, geo.out_channels, geo.out_h, geo.out_w]);

    // Pre-transform all kernels once: U[oc][ic] in the 4x4 domain.
    let wd = weights.data();
    let kstride = 9;
    let mut u = vec![[0.0f32; 16]; geo.out_channels * geo.in_channels];
    for oc in 0..geo.out_channels {
        for ic in 0..geo.in_channels {
            let base = (oc * geo.in_channels + ic) * kstride;
            let mut g = [0.0f32; 9];
            g.copy_from_slice(&wd[base..base + 9]);
            u[oc * geo.in_channels + ic] = transform_kernel(&g);
        }
    }

    let tiles_h = geo.out_h.div_ceil(2);
    let tiles_w = geo.out_w.div_ceil(2);
    let in_img = geo.in_channels * geo.in_h * geo.in_w;
    let out_img = geo.out_channels * geo.out_h * geo.out_w;
    let in_data = input.data();
    let out_data = out.data_mut();

    for n in 0..batch {
        let ibase_n = n * in_img;
        let obase_n = n * out_img;
        for th in 0..tiles_h {
            for tw in 0..tiles_w {
                // Gather the 4x4 input tiles for all channels once.
                let mut v_tiles = vec![[0.0f32; 16]; geo.in_channels];
                for ic in 0..geo.in_channels {
                    let mut d = [0.0f32; 16];
                    for r in 0..4 {
                        let ih = (th * 2 + r) as isize - geo.pad as isize;
                        for c in 0..4 {
                            let iw = (tw * 2 + c) as isize - geo.pad as isize;
                            d[r * 4 + c] = if ih >= 0
                                && ih < geo.in_h as isize
                                && iw >= 0
                                && iw < geo.in_w as isize
                            {
                                in_data[ibase_n
                                    + ic * geo.in_h * geo.in_w
                                    + ih as usize * geo.in_w
                                    + iw as usize]
                            } else {
                                0.0
                            };
                        }
                    }
                    v_tiles[ic] = transform_input(&d);
                }
                for oc in 0..geo.out_channels {
                    let mut m = [0.0f32; 16];
                    for ic in 0..geo.in_channels {
                        let uk = &u[oc * geo.in_channels + ic];
                        let vt = &v_tiles[ic];
                        for i in 0..16 {
                            m[i] += uk[i] * vt[i];
                        }
                    }
                    let y = transform_output(&m);
                    let b = bias.map_or(0.0, |b| b[oc]);
                    for r in 0..2 {
                        let oh = th * 2 + r;
                        if oh >= geo.out_h {
                            continue;
                        }
                        for c in 0..2 {
                            let ow = tw * 2 + c;
                            if ow >= geo.out_w {
                                continue;
                            }
                            out_data[obase_n + oc * geo.out_h * geo.out_w + oh * geo.out_w + ow] =
                                y[r * 2 + c] + b;
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d_ref;
    use crate::rng::Rng;

    #[test]
    fn single_tile_matches_direct() {
        // 4x4 input, 3x3 kernel, no padding -> one 2x2 Winograd tile.
        let geo = Conv2dGeometry::new(1, 1, 3, 3, 4, 4, 1, 0);
        let mut rng = Rng::seed_from(1);
        let input = Tensor::randn(&[1, 1, 4, 4], &mut rng);
        let weights = Tensor::randn(&[1, 1, 3, 3], &mut rng);
        let r = conv2d_ref(&input, &weights, None, &geo);
        let w = conv2d_winograd(&input, &weights, None, &geo);
        assert!(r.approx_eq(&w, 1e-4), "diff {:?}", r.max_abs_diff(&w));
    }

    #[test]
    fn matches_reference_on_awkward_sizes() {
        let mut rng = Rng::seed_from(2);
        for &(oc, ic, hw, pad) in &[(2, 3, 7, 1), (4, 2, 5, 0), (3, 3, 9, 1), (1, 1, 6, 1)] {
            let geo = Conv2dGeometry::new(oc, ic, 3, 3, hw, hw, 1, pad);
            let input = Tensor::randn(&[2, ic, hw, hw], &mut rng);
            let weights = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
            let bias: Vec<f32> = (0..oc).map(|_| rng.uniform(-0.5, 0.5)).collect();
            let r = conv2d_ref(&input, &weights, Some(&bias), &geo);
            let w = conv2d_winograd(&input, &weights, Some(&bias), &geo);
            assert!(
                r.approx_eq(&w, 1e-3),
                "oc={oc} ic={ic} hw={hw} pad={pad}: diff {:?}",
                r.max_abs_diff(&w)
            );
        }
    }

    #[test]
    fn kernel_transform_of_identity_kernel() {
        // Kernel with only the centre weight set: transformed tile must
        // reproduce plain scaling after the round trip.
        let mut g = [0.0f32; 9];
        g[4] = 1.0;
        let u = transform_kernel(&g);
        let mut d = [0.0f32; 16];
        for (i, v) in d.iter_mut().enumerate() {
            *v = i as f32;
        }
        let v = transform_input(&d);
        let mut m = [0.0f32; 16];
        for i in 0..16 {
            m[i] = u[i] * v[i];
        }
        let y = transform_output(&m);
        // Centre-only kernel == shifting: output(r,c) = d[r+1][c+1].
        assert!((y[0] - d[5]).abs() < 1e-4);
        assert!((y[1] - d[6]).abs() < 1e-4);
        assert!((y[2] - d[9]).abs() < 1e-4);
        assert!((y[3] - d[10]).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "stride 1")]
    fn rejects_strided_geometry() {
        let geo = Conv2dGeometry::new(1, 1, 3, 3, 8, 8, 2, 1);
        let input = Tensor::zeros(&[1, 1, 8, 8]);
        let weights = Tensor::zeros(&[1, 1, 3, 3]);
        conv2d_winograd(&input, &weights, None, &geo);
    }
}
