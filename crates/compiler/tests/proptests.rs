//! Property-based tests of the compiler-stage invariants (DESIGN.md §6).
//!
//! Exercised over a deterministic sweep of seeds using the workspace's
//! own [`Rng`]; case parameters are derived from each seed, covering the
//! same ranges the original proptest strategies did.

use patdnn_compiler::csr::CsrLayer;
use patdnn_compiler::fkr::{filter_kernel_reorder, FilterOrder};
use patdnn_compiler::fkw::FkwLayer;
use patdnn_compiler::lre::{register_loads, LreLevel};
use patdnn_compiler::tune::ga::{GaConfig, GaExplorer};
use patdnn_compiler::tune::space::ConfigSpace;
use patdnn_core::pattern_set::PatternSet;
use patdnn_core::project::prune_layer;
use patdnn_tensor::rng::Rng;
use patdnn_tensor::{Conv2dGeometry, Tensor};

fn pruned(
    oc: usize,
    ic: usize,
    frac: f32,
    seed: u64,
) -> (Tensor, patdnn_core::project::LayerPruning, PatternSet) {
    let mut rng = Rng::seed_from(seed);
    let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
    let set = PatternSet::standard(8);
    let alpha = (((oc * ic) as f32 * frac) as usize).max(1);
    let lp = prune_layer("p", &mut w, &set, alpha);
    (w, lp, set)
}

/// FKW round-trips losslessly for arbitrary shapes and sparsity, with
/// or without filter reorder.
#[test]
fn fkw_round_trip() {
    for seed in 0..40u64 {
        let mut rng = Rng::seed_from(1000 + seed);
        let (oc, ic) = (1 + rng.below(9), 1 + rng.below(9));
        let frac = rng.uniform(0.1, 1.0);
        let reorder = rng.chance(0.5);
        let (w, lp, set) = pruned(oc, ic, frac, seed);
        let order = if reorder {
            filter_kernel_reorder(&lp)
        } else {
            FilterOrder::identity(&lp)
        };
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        assert_eq!(fkw.to_dense(), w, "seed {seed}");
        // Reorder array is always a permutation.
        let mut rows: Vec<u16> = fkw.reorder.clone();
        rows.sort_unstable();
        assert_eq!(rows, (0..oc as u16).collect::<Vec<_>>(), "seed {seed}");
    }
}

/// FKR preserves the filter multiset and always yields zero
/// within-group imbalance.
#[test]
fn fkr_invariants() {
    for seed in 0..40u64 {
        let mut rng = Rng::seed_from(2000 + seed);
        let (oc, ic) = (2 + rng.below(14), 2 + rng.below(8));
        let frac = rng.uniform(0.2, 0.9);
        let (_, lp, _) = pruned(oc, ic, frac, seed);
        let order = filter_kernel_reorder(&lp);
        assert_eq!(order.group_imbalance(&lp), 0, "seed {seed}");
        let mut sorted = order.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..oc).collect::<Vec<_>>(), "seed {seed}");
        // Groups tile [0, oc).
        let covered: usize = order.groups.iter().map(|g| g.len()).sum();
        assert_eq!(covered, oc, "seed {seed}");
    }
}

/// CSR round-trips and always carries 4 bytes of column index per
/// non-zero — the structural cost FKW avoids.
#[test]
fn csr_round_trip_and_cost() {
    for seed in 0..40u64 {
        let mut rng = Rng::seed_from(3000 + seed);
        let (oc, ic) = (1 + rng.below(7), 1 + rng.below(7));
        let frac = rng.uniform(0.1, 1.0);
        let (w, _, _) = pruned(oc, ic, frac, seed);
        let csr = CsrLayer::from_dense(&w);
        assert_eq!(csr.to_dense(), w.clone(), "seed {seed}");
        assert_eq!(csr.nnz(), w.count_nonzero(), "seed {seed}");
        assert_eq!(
            csr.extra_bytes(),
            4 * (oc + 1) + 4 * csr.nnz(),
            "seed {seed}"
        );
    }
}

/// LRE never increases load counts, at any unroll configuration.
#[test]
fn lre_is_monotone() {
    for seed in 0..40u64 {
        let mut rng = Rng::seed_from(4000 + seed);
        let (oc, ic) = (2 + rng.below(6), 2 + rng.below(6));
        let hw = 4 + rng.below(12);
        let (uw, uoc) = (1 + rng.below(5), 1 + rng.below(5));
        let (w, lp, set) = pruned(oc, ic, 0.5, seed);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        let geo = Conv2dGeometry::new(oc, ic, 3, 3, hw, hw, 1, 1);
        let none = register_loads(&geo, &fkw, uw, uoc, LreLevel::None);
        let kernel = register_loads(&geo, &fkw, uw, uoc, LreLevel::Kernel);
        let full = register_loads(&geo, &fkw, uw, uoc, LreLevel::KernelFilter);
        assert!(kernel.input_loads <= none.input_loads, "seed {seed}");
        assert!(full.input_loads <= kernel.input_loads, "seed {seed}");
        assert_eq!(none.weight_loads, kernel.weight_loads, "seed {seed}");
    }
}

/// GA exploration is deterministic for a fixed seed and never worse
/// than the best of its own evaluations.
#[test]
fn ga_is_deterministic() {
    for seed in 0..40u64 {
        let space = ConfigSpace::standard();
        let explorer = GaExplorer::new(GaConfig {
            population: 10,
            generations: 4,
            ..GaConfig::default()
        });
        let cost = |c: &patdnn_compiler::tune::space::TuningConfig| -> f64 {
            c.tile_oc as f64 + c.unroll_w as f64 * 0.5 + if c.blocked { 0.0 } else { 3.0 }
        };
        let a = explorer.optimize(&space, cost, &mut Rng::seed_from(seed));
        let b = explorer.optimize(&space, cost, &mut Rng::seed_from(seed));
        assert_eq!(a.best, b.best, "seed {seed}");
        assert_eq!(a.best_cost, b.best_cost, "seed {seed}");
        assert!(a.history.iter().all(|&h| h >= a.best_cost), "seed {seed}");
    }
}
