//! Property-based tests of the compiler-stage invariants (DESIGN.md §6).

use patdnn_compiler::csr::CsrLayer;
use patdnn_compiler::fkr::{filter_kernel_reorder, FilterOrder};
use patdnn_compiler::fkw::FkwLayer;
use patdnn_compiler::lre::{register_loads, LreLevel};
use patdnn_compiler::tune::ga::{GaConfig, GaExplorer};
use patdnn_compiler::tune::space::ConfigSpace;
use patdnn_core::pattern_set::PatternSet;
use patdnn_core::project::prune_layer;
use patdnn_tensor::rng::Rng;
use patdnn_tensor::{Conv2dGeometry, Tensor};
use proptest::prelude::*;

fn pruned(oc: usize, ic: usize, frac: f32, seed: u64) -> (Tensor, patdnn_core::project::LayerPruning, PatternSet) {
    let mut rng = Rng::seed_from(seed);
    let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
    let set = PatternSet::standard(8);
    let alpha = (((oc * ic) as f32 * frac) as usize).max(1);
    let lp = prune_layer("p", &mut w, &set, alpha);
    (w, lp, set)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// FKW round-trips losslessly for arbitrary shapes and sparsity, with
    /// or without filter reorder.
    #[test]
    fn fkw_round_trip(
        oc in 1usize..10,
        ic in 1usize..10,
        frac in 0.1f32..1.0,
        reorder in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (w, lp, set) = pruned(oc, ic, frac, seed);
        let order = if reorder {
            filter_kernel_reorder(&lp)
        } else {
            FilterOrder::identity(&lp)
        };
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        prop_assert_eq!(fkw.to_dense(), w);
        // Reorder array is always a permutation.
        let mut rows: Vec<u16> = fkw.reorder.clone();
        rows.sort_unstable();
        prop_assert_eq!(rows, (0..oc as u16).collect::<Vec<_>>());
    }

    /// FKR preserves the filter multiset and always yields zero
    /// within-group imbalance.
    #[test]
    fn fkr_invariants(
        oc in 2usize..16,
        ic in 2usize..10,
        frac in 0.2f32..0.9,
        seed in any::<u64>(),
    ) {
        let (_, lp, _) = pruned(oc, ic, frac, seed);
        let order = filter_kernel_reorder(&lp);
        prop_assert_eq!(order.group_imbalance(&lp), 0);
        let mut sorted = order.order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..oc).collect::<Vec<_>>());
        // Groups tile [0, oc).
        let covered: usize = order.groups.iter().map(|g| g.len()).sum();
        prop_assert_eq!(covered, oc);
    }

    /// CSR round-trips and always carries 4 bytes of column index per
    /// non-zero — the structural cost FKW avoids.
    #[test]
    fn csr_round_trip_and_cost(
        oc in 1usize..8,
        ic in 1usize..8,
        frac in 0.1f32..1.0,
        seed in any::<u64>(),
    ) {
        let (w, _, _) = pruned(oc, ic, frac, seed);
        let csr = CsrLayer::from_dense(&w);
        prop_assert_eq!(csr.to_dense(), w.clone());
        prop_assert_eq!(csr.nnz(), w.count_nonzero());
        prop_assert_eq!(csr.extra_bytes(), 4 * (oc + 1) + 4 * csr.nnz());
    }

    /// LRE never increases load counts, at any unroll configuration.
    #[test]
    fn lre_is_monotone(
        oc in 2usize..8,
        ic in 2usize..8,
        hw in 4usize..16,
        uw in 1usize..6,
        uoc in 1usize..6,
        seed in any::<u64>(),
    ) {
        let (w, lp, set) = pruned(oc, ic, 0.5, seed);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        let geo = Conv2dGeometry::new(oc, ic, 3, 3, hw, hw, 1, 1);
        let none = register_loads(&geo, &fkw, uw, uoc, LreLevel::None);
        let kernel = register_loads(&geo, &fkw, uw, uoc, LreLevel::Kernel);
        let full = register_loads(&geo, &fkw, uw, uoc, LreLevel::KernelFilter);
        prop_assert!(kernel.input_loads <= none.input_loads);
        prop_assert!(full.input_loads <= kernel.input_loads);
        prop_assert_eq!(none.weight_loads, kernel.weight_loads);
    }

    /// GA exploration is deterministic for a fixed seed and never worse
    /// than the best of its own evaluations.
    #[test]
    fn ga_is_deterministic(seed in any::<u64>()) {
        let space = ConfigSpace::standard();
        let explorer = GaExplorer::new(GaConfig {
            population: 10,
            generations: 4,
            ..GaConfig::default()
        });
        let cost = |c: &patdnn_compiler::tune::space::TuningConfig| -> f64 {
            c.tile_oc as f64 + c.unroll_w as f64 * 0.5 + if c.blocked { 0.0 } else { 3.0 }
        };
        let a = explorer.optimize(&space, cost, &mut Rng::seed_from(seed));
        let b = explorer.optimize(&space, cost, &mut Rng::seed_from(seed));
        prop_assert_eq!(a.best, b.best);
        prop_assert_eq!(a.best_cost, b.best_cost);
        prop_assert!(a.history.iter().all(|&h| h >= a.best_cost));
    }
}
