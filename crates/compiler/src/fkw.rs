//! FKW (Filter-Kernel-Weight) compressed weight storage — §5.3, Figure 10.
//!
//! Five arrays describe a pruned layer after filter-kernel reorder:
//!
//! - **offset** (filter level): cumulative count of stored kernels per
//!   filter row;
//! - **reorder** (filter level): the original output channel of each
//!   stored row, "used for accumulating the computation output to the
//!   correct output channel";
//! - **index** (kernel level): the input channel of each stored kernel;
//! - **stride** (kernel level): per filter, cumulative kernel counts per
//!   pattern, delimiting the branch-free per-pattern inner loops;
//! - **weight**: the surviving weights, `entries` per kernel.
//!
//! Following the paper's storage argument, the kernel-level arrays use
//! 16-bit indices (channel counts stay below 2¹⁶) while CSR-style formats
//! need a 32-bit column index per *weight* — that difference is the
//! Figure 16 overhead gap.

use patdnn_core::pattern::Pattern;
use patdnn_core::pattern_set::PatternSet;
use patdnn_core::project::{KernelStatus, LayerPruning};
use patdnn_tensor::Tensor;

use crate::fkr::FilterOrder;

/// A convolution layer's weights in FKW compressed form.
#[derive(Debug, Clone, PartialEq)]
pub struct FkwLayer {
    /// Number of filters (rows).
    pub out_c: usize,
    /// Number of input channels of the dense layer.
    pub in_c: usize,
    /// Kernel size (square).
    pub kernel: usize,
    /// Non-zero entries stored per kernel (uniform per layer: 4 for
    /// 4-entry patterns, `kernel²` for dense kernels).
    pub entries_per_kernel: usize,
    /// The local pattern table; kernels reference it by position.
    pub patterns: Vec<Pattern>,
    /// Filter-level: cumulative stored-kernel counts, `out_c + 1` entries.
    pub offsets: Vec<u32>,
    /// Filter-level: original output channel per stored row.
    pub reorder: Vec<u16>,
    /// Kernel-level: input channel per stored kernel.
    pub index: Vec<u16>,
    /// Kernel-level: per filter, `patterns.len() + 1` cumulative counts
    /// delimiting same-pattern runs (relative to the filter's offset).
    pub stride: Vec<u16>,
    /// Weight-level: surviving weights, `entries_per_kernel` per kernel,
    /// in pattern-position (row-major) order.
    pub weights: Vec<f32>,
}

impl FkwLayer {
    /// Compresses a pruned OIHW weight tensor given its pruning record,
    /// the model pattern set, and a filter order (use
    /// [`FilterOrder::identity`] for the un-reordered baseline).
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree, if a "kept" kernel mixes pattern and
    /// dense statuses with different entry counts, or if channel counts
    /// exceed 16-bit range.
    pub fn from_pruned(
        weights: &Tensor,
        lp: &LayerPruning,
        set: &PatternSet,
        order: &FilterOrder,
    ) -> Self {
        let s = weights.shape4();
        assert_eq!(
            (s.n, s.c),
            (lp.out_c, lp.in_c),
            "pruning record shape mismatch"
        );
        assert_eq!(s.h, lp.kernel, "kernel size mismatch");
        assert!(s.c <= u16::MAX as usize, "in_c exceeds 16-bit index");
        assert!(s.n <= u16::MAX as usize, "out_c exceeds 16-bit reorder");
        let ksize = s.h * s.w;

        // Local pattern table: distinct statuses in ascending global order.
        let mut local: Vec<(usize, Pattern)> = Vec::new(); // (sort key, pattern)
        let dense_pattern = || {
            let all: Vec<(usize, usize)> = (0..s.h)
                .flat_map(|r| (0..s.w).map(move |c| (r, c)))
                .collect();
            Pattern::from_positions(s.h, &all)
        };
        for st in &lp.kernels {
            match st {
                KernelStatus::Pattern(id) => {
                    if !local.iter().any(|&(k, _)| k == *id) {
                        local.push((*id, set.get(*id)));
                    }
                }
                KernelStatus::Dense => {
                    if !local.iter().any(|&(k, _)| k == usize::MAX - 1) {
                        local.push((usize::MAX - 1, dense_pattern()));
                    }
                }
                KernelStatus::Pruned => {}
            }
        }
        local.sort_by_key(|&(k, _)| k);
        let local_of = |st: KernelStatus| -> usize {
            let key = match st {
                KernelStatus::Pattern(id) => id,
                KernelStatus::Dense => usize::MAX - 1,
                KernelStatus::Pruned => unreachable!("pruned kernels are not stored"),
            };
            local
                .iter()
                .position(|&(k, _)| k == key)
                .expect("pattern in table")
        };
        let patterns: Vec<Pattern> = local.iter().map(|&(_, p)| p).collect();
        let entries_per_kernel = patterns.first().map_or(0, |p| p.entries());
        assert!(
            patterns.iter().all(|p| p.entries() == entries_per_kernel),
            "mixed entry counts within a layer"
        );

        let np = patterns.len();
        let mut offsets = Vec::with_capacity(s.n + 1);
        let mut reorder = Vec::with_capacity(s.n);
        let mut index = Vec::new();
        let mut stride = Vec::with_capacity(s.n * (np + 1));
        let mut wout = Vec::new();
        offsets.push(0u32);

        for &f in &order.order {
            reorder.push(f as u16);
            // FKW requires kernels grouped by pattern within each filter
            // (the kernel-reorder half of FKR); enforce it regardless of
            // the supplied order so `stride` runs are always contiguous.
            let mut kernels_of_f: Vec<(usize, usize)> = order.kernel_order[f]
                .iter()
                .map(|&(ic, st)| (local_of(st), ic))
                .collect();
            kernels_of_f.sort_unstable();
            // Per-pattern cumulative counts for this filter.
            let mut counts = vec![0u16; np];
            for &(lid, ic) in &kernels_of_f {
                counts[lid] += 1;
                index.push(ic as u16);
                let kbase = (f * s.c + ic) * ksize;
                let kernel = &weights.data()[kbase..kbase + ksize];
                for (pos, &w) in kernel.iter().enumerate() {
                    if patterns[lid].contains(pos / s.w, pos % s.w) {
                        wout.push(w);
                    }
                }
            }
            stride.push(0);
            let mut acc = 0u16;
            for &c in &counts {
                acc += c;
                stride.push(acc);
            }
            offsets.push(offsets.last().expect("non-empty") + order.kernel_order[f].len() as u32);
        }

        FkwLayer {
            out_c: s.n,
            in_c: s.c,
            kernel: s.h,
            entries_per_kernel,
            patterns,
            offsets,
            reorder,
            index,
            stride,
            weights: wout,
        }
    }

    /// Number of stored (non-empty) kernels.
    pub fn stored_kernels(&self) -> usize {
        self.index.len()
    }

    /// Reconstructs the dense OIHW tensor (lossless round trip).
    pub fn to_dense(&self) -> Tensor {
        let ksize = self.kernel * self.kernel;
        let mut out = Tensor::zeros(&[self.out_c, self.in_c, self.kernel, self.kernel]);
        let np = self.patterns.len();
        let mut wpos = 0usize;
        for row in 0..self.out_c {
            let f = self.reorder[row] as usize;
            let base = self.offsets[row] as usize;
            for p in 0..np {
                let lo = self.stride[row * (np + 1) + p] as usize;
                let hi = self.stride[row * (np + 1) + p + 1] as usize;
                for k in lo..hi {
                    let ic = self.index[base + k] as usize;
                    let kbase = (f * self.in_c + ic) * ksize;
                    for pos in 0..ksize {
                        if self.patterns[p].contains(pos / self.kernel, pos % self.kernel) {
                            out.data_mut()[kbase + pos] = self.weights[wpos];
                            wpos += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(wpos, self.weights.len(), "all stored weights consumed");
        out
    }

    /// Bytes of index structure (everything except the weights): the
    /// quantity Figure 16 compares against CSR.
    pub fn extra_bytes(&self) -> usize {
        self.offsets.len() * 4
            + self.reorder.len() * 2
            + self.index.len() * 2
            + self.stride.len() * 2
            // Local pattern table: one 16-bit mask per pattern.
            + self.patterns.len() * 2
    }

    /// Bytes of stored weights.
    pub fn weight_bytes(&self) -> usize {
        self.weights.len() * 4
    }

    /// Total storage footprint in bytes.
    pub fn total_bytes(&self) -> usize {
        self.extra_bytes() + self.weight_bytes()
    }

    /// Iterates over stored rows: `(row, original_filter)`.
    pub fn rows(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.reorder
            .iter()
            .enumerate()
            .map(|(r, &f)| (r, f as usize))
    }

    /// The kernel range (relative to the whole `index` array) of pattern
    /// `p` in row `row`.
    pub fn pattern_run(&self, row: usize, p: usize) -> std::ops::Range<usize> {
        let np = self.patterns.len();
        let base = self.offsets[row] as usize;
        let lo = self.stride[row * (np + 1) + p] as usize;
        let hi = self.stride[row * (np + 1) + p + 1] as usize;
        base + lo..base + hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fkr::filter_kernel_reorder;
    use patdnn_core::project::prune_layer;
    use patdnn_tensor::rng::Rng;

    fn setup(oc: usize, ic: usize, alpha: usize, seed: u64) -> (Tensor, LayerPruning, PatternSet) {
        let mut rng = Rng::seed_from(seed);
        let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("t", &mut w, &set, alpha);
        (w, lp, set)
    }

    #[test]
    fn round_trip_is_lossless_with_identity_order() {
        let (w, lp, set) = setup(8, 8, 32, 1);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &FilterOrder::identity(&lp));
        assert_eq!(fkw.to_dense(), w);
    }

    #[test]
    fn round_trip_is_lossless_with_reorder() {
        let (w, lp, set) = setup(16, 8, 64, 2);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        assert_eq!(fkw.to_dense(), w);
    }

    #[test]
    fn counts_match_pruning_record() {
        let (w, lp, set) = setup(8, 16, 50, 3);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        assert_eq!(fkw.stored_kernels(), lp.kept_kernels());
        assert_eq!(fkw.weights.len(), lp.kept_kernels() * 4);
        assert_eq!(fkw.offsets.len(), 9);
        assert_eq!(*fkw.offsets.last().unwrap() as usize, lp.kept_kernels());
    }

    #[test]
    fn reorder_array_is_permutation() {
        let (w, lp, set) = setup(12, 6, 40, 4);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        let mut seen: Vec<u16> = fkw.reorder.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..12u16).collect::<Vec<_>>());
    }

    #[test]
    fn pattern_runs_tile_each_filter() {
        let (w, lp, set) = setup(8, 8, 40, 5);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        for row in 0..fkw.out_c {
            let mut covered = 0;
            for p in 0..fkw.patterns.len() {
                covered += fkw.pattern_run(row, p).len();
            }
            let expect = (fkw.offsets[row + 1] - fkw.offsets[row]) as usize;
            assert_eq!(covered, expect, "row {row}");
        }
    }

    #[test]
    fn dense_1x1_layer_compresses_with_connectivity_only() {
        let mut rng = Rng::seed_from(6);
        let mut w = Tensor::randn(&[8, 8, 1, 1], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("proj", &mut w, &set, 16);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        assert_eq!(fkw.entries_per_kernel, 1);
        assert_eq!(fkw.stored_kernels(), 16);
        assert_eq!(fkw.to_dense(), w);
    }

    #[test]
    fn extra_bytes_scale_with_kernels_not_weights() {
        let (w, lp, set) = setup(8, 8, 32, 7);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        // 2 bytes per kernel index + filter-level arrays.
        let per_kernel = 2 * fkw.stored_kernels();
        assert!(fkw.extra_bytes() >= per_kernel);
        assert!(
            fkw.extra_bytes()
                < per_kernel + 4 * (fkw.out_c + 1) + 2 * fkw.out_c + 2 * fkw.out_c * 9 + 32
        );
        assert_eq!(fkw.weight_bytes(), 4 * 4 * fkw.stored_kernels());
    }
}
