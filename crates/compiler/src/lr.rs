//! The high-level, fine-grained Layerwise Representation (LR) — §5.1,
//! Figure 8.
//!
//! "This LR includes intensive DNN layer specific information to enable
//! aggressive layerwise optimizations. In particular, it includes
//! detailed kernel pattern and connectivity-related information [...] and
//! tuning-decided parameters."

use std::fmt;

use crate::fkw::FkwLayer;
use crate::tune::space::TuningConfig;

/// Target device of the generated code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// Mobile CPU (vectorized C++ in the paper).
    Cpu,
    /// Mobile GPU (OpenCL in the paper).
    Gpu,
}

impl Device {
    /// The LR label.
    pub fn label(&self) -> &'static str {
        match self {
            Device::Cpu => "CPU",
            Device::Gpu => "GPU",
        }
    }
}

/// Weight storage scheme recorded in the LR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Storage {
    /// The FKW compact format ("tight" in the paper's example).
    Tight,
    /// CSR baseline storage.
    Csr,
    /// Dense storage (unpruned baselines).
    Dense,
}

impl Storage {
    /// The LR label.
    pub fn label(&self) -> &'static str {
        match self {
            Storage::Tight => "tight",
            Storage::Csr => "csr",
            Storage::Dense => "dense",
        }
    }
}

/// The layerwise representation of one CONV layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerLr {
    /// Layer name (e.g. `conv_op1`).
    pub name: String,
    /// Target device.
    pub device: Device,
    /// Storage scheme.
    pub storage: Storage,
    /// Pattern types present in this layer (local pattern table ids).
    pub pattern_types: Vec<usize>,
    /// Weight layout label (`FKW` after filter-kernel reorder).
    pub layout: String,
    /// Tuning-decided parameters.
    pub tuning: TuningConfig,
    /// Convolution strides `[h, w]`.
    pub strides: [usize; 2],
    /// Dilations `[h, w]`.
    pub dilations: [usize; 2],
    /// Padding `[h, w]`.
    pub pads: [usize; 2],
}

impl LayerLr {
    /// Builds the LR for a pattern-pruned layer in FKW storage.
    pub fn for_fkw(
        name: &str,
        device: Device,
        fkw: &FkwLayer,
        tuning: TuningConfig,
        stride: usize,
        pad: usize,
    ) -> Self {
        LayerLr {
            name: name.to_owned(),
            device,
            storage: Storage::Tight,
            pattern_types: (0..fkw.patterns.len()).collect(),
            layout: "FKW".to_owned(),
            tuning,
            strides: [stride, stride],
            dilations: [1, 1],
            pads: [pad, pad],
        }
    }

    /// Emits the YAML-like textual form of Figure 8.
    pub fn emit(&self) -> String {
        self.to_string()
    }
}

fn fmt_list(xs: &[usize]) -> String {
    let inner: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", inner.join(", "))
}

impl fmt::Display for LayerLr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "device: [{}]", self.device.label())?;
        writeln!(f, "layers:")?;
        writeln!(f, "  - name: \"{}\"", self.name)?;
        writeln!(f, "    storage: \"{}\"", self.storage.label())?;
        writeln!(
            f,
            "    pattern: {{\"type\": {}, \"layout\": {}}}",
            fmt_list(&self.pattern_types),
            self.layout
        )?;
        writeln!(
            f,
            "    tuning:  {{\"unroll\": [{}, {}], \"tile\": [{}, {}], \"permute\": {}}}",
            self.tuning.unroll_oc,
            self.tuning.unroll_w,
            self.tuning.tile_oc,
            self.tuning.tile_hw,
            self.tuning.permute.label(self.tuning.blocked)
        )?;
        write!(
            f,
            "    info:    {{\"strides\": {}, \"dilations\": {}, \"pads\": {}}}",
            fmt_list(&self.strides),
            fmt_list(&self.dilations),
            fmt_list(&self.pads)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fkr::filter_kernel_reorder;
    use patdnn_core::pattern_set::PatternSet;
    use patdnn_core::project::prune_layer;
    use patdnn_tensor::rng::Rng;
    use patdnn_tensor::Tensor;

    fn sample_lr() -> LayerLr {
        let mut rng = Rng::seed_from(1);
        let mut w = Tensor::randn(&[8, 8, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("conv_op1", &mut w, &set, 32);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        LayerLr::for_fkw(
            "conv_op1",
            Device::Cpu,
            &fkw,
            TuningConfig::tuned_default(),
            1,
            1,
        )
    }

    #[test]
    fn emission_matches_figure8_structure() {
        let lr = sample_lr();
        let text = lr.emit();
        assert!(text.starts_with("device: [CPU]"));
        assert!(text.contains("name: \"conv_op1\""));
        assert!(text.contains("storage: \"tight\""));
        assert!(text.contains("\"layout\": FKW"));
        assert!(text.contains("\"permute\": cohwci_b"));
        assert!(text.contains("\"strides\": [1, 1]"));
    }

    #[test]
    fn pattern_types_enumerate_local_table() {
        let lr = sample_lr();
        assert!(!lr.pattern_types.is_empty());
        assert_eq!(
            lr.pattern_types,
            (0..lr.pattern_types.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn labels_cover_all_variants() {
        assert_eq!(Device::Gpu.label(), "GPU");
        assert_eq!(Storage::Csr.label(), "csr");
        assert_eq!(Storage::Dense.label(), "dense");
    }
}
