//! Symmetric per-filter INT8 weight quantization over FKW storage.
//!
//! PatDNN's compact FKW format (§5.3) is designed to pair pattern
//! pruning with reduced-precision weights: the five index arrays are
//! precision-independent, so swapping the `f32` weight payload for
//! `i8` keeps the whole executor structure — reorder, pattern runs,
//! per-kernel index — unchanged while quartering weight traffic.
//!
//! The scheme is the standard symmetric one:
//!
//! - **Weights** are quantized *per filter* (per output channel): each
//!   filter's stored weights map to `i8` via `q = round(w / s_f)` with
//!   `s_f = max|w| / 127` over that filter, so a filter with small
//!   weights does not waste range on a loud neighbor.
//! - **Activations** use a single per-layer scale calibrated offline
//!   from a sample batch ([`patdnn_nn::calibrate`] exports the ranges);
//!   the executor quantizes its input with that persisted scale at run
//!   time.
//! - Accumulation is exact `i8 × i8 → i32`; the output dequantizes with
//!   one multiply per element (`acc · s_act · s_f`), and biases stay
//!   `f32`, added after dequantization.

use crate::fkw::FkwLayer;
use patdnn_core::pattern::Pattern;

/// The symmetric INT8 quantization range: values map to `[-127, 127]`
/// (the `-128` code is unused, keeping the scheme exactly symmetric).
pub const QMAX: f32 = 127.0;

/// The scale mapping a symmetric `f32` range to `[-127, 127]`.
///
/// A degenerate range (all-zero or non-finite input) gets a scale of 1,
/// which quantizes every value in it to 0 — the only representable
/// answer anyway — instead of producing NaN scales.
pub fn scale_for(max_abs: f32) -> f32 {
    if max_abs.is_finite() && max_abs > 0.0 {
        max_abs / QMAX
    } else {
        1.0
    }
}

/// Largest absolute value of a slice (0 for an empty slice).
pub fn max_abs(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// Quantizes one value: round-to-nearest, clamped to the symmetric range.
///
/// Internally multiplies by the reciprocal scale (matching the hot-path
/// slice quantizer bit for bit) and rounds ties to even — the single
/// rounding instruction the autovectorizer can lift into SIMD lanes.
#[inline]
pub fn quantize_value(x: f32, scale: f32) -> i8 {
    quantize_with_inv(x, 1.0 / scale)
}

#[inline]
fn quantize_with_inv(x: f32, inv: f32) -> i8 {
    // Round to nearest (ties to even) via the classic 1.5·2²³ bias: for
    // any |v| ≤ 127 the addition pushes the value into the float range
    // where the mantissa step is exactly 1, so the hardware's add
    // rounds it, and the subtraction recovers the integer. Clamping
    // first keeps the trick's precondition and saturates out-of-range
    // inputs; NaN falls through the cast to 0. Everything here is plain
    // mul/min/max/add arithmetic, so the loop vectorizes on baseline
    // targets (no `roundss`-style instruction needed).
    const BIAS: f32 = 12_582_912.0;
    let v = (x * inv).clamp(-QMAX, QMAX);
    ((v + BIAS) - BIAS) as i8
}

/// Quantizes a slice into a caller-provided buffer of equal length.
/// This is the executors' per-inference input path: one multiply, one
/// rounding op, and one clamp per element, no divisions in the loop.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn quantize_slice_into(xs: &[f32], scale: f32, out: &mut [i8]) {
    assert_eq!(xs.len(), out.len(), "quantization buffer length mismatch");
    let inv = 1.0 / scale;
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = quantize_with_inv(x, inv);
    }
}

/// Quantizes a slice into a fresh vector.
pub fn quantize_slice(xs: &[f32], scale: f32) -> Vec<i8> {
    let mut out = vec![0i8; xs.len()];
    quantize_slice_into(xs, scale, &mut out);
    out
}

/// An FKW layer with INT8 weights: the same five-array layout as
/// [`FkwLayer`] — offsets, reorder, index, stride, and the local pattern
/// table are byte-for-byte the structure the `f32` executors traverse —
/// plus per-filter weight scales and the calibrated input activation
/// scale the quantized executor needs at run time.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantFkwLayer {
    /// Number of filters (rows).
    pub out_c: usize,
    /// Number of input channels of the dense layer.
    pub in_c: usize,
    /// Kernel size (square).
    pub kernel: usize,
    /// Non-zero entries stored per kernel.
    pub entries_per_kernel: usize,
    /// The local pattern table; kernels reference it by position.
    pub patterns: Vec<Pattern>,
    /// Filter-level: cumulative stored-kernel counts, `out_c + 1` entries.
    pub offsets: Vec<u32>,
    /// Filter-level: original output channel per stored row.
    pub reorder: Vec<u16>,
    /// Kernel-level: input channel per stored kernel.
    pub index: Vec<u16>,
    /// Kernel-level: per filter, `patterns.len() + 1` cumulative counts
    /// delimiting same-pattern runs (relative to the filter's offset).
    pub stride: Vec<u16>,
    /// Weight-level: quantized surviving weights, `entries_per_kernel`
    /// per kernel, in the same order as the `f32` layout.
    pub qweights: Vec<i8>,
    /// Per-filter dequantization scales, indexed by *original* output
    /// channel (`scales[reorder[row]]` for storage row `row`).
    pub scales: Vec<f32>,
    /// Calibrated input-activation scale (symmetric, per layer).
    pub act_scale: f32,
}

impl QuantFkwLayer {
    /// Quantizes an `f32` FKW layer given the layer's calibrated input
    /// activation range (`act_max_abs`, the largest absolute input value
    /// observed on the calibration batch).
    pub fn from_fkw(fkw: &FkwLayer, act_max_abs: f32) -> Self {
        let e = fkw.entries_per_kernel;
        let mut scales = vec![1.0f32; fkw.out_c];
        let mut qweights = vec![0i8; fkw.weights.len()];
        for (row, f) in fkw.rows() {
            let lo = fkw.offsets[row] as usize * e;
            let hi = fkw.offsets[row + 1] as usize * e;
            let s = scale_for(max_abs(&fkw.weights[lo..hi]));
            scales[f] = s;
            quantize_slice_into(&fkw.weights[lo..hi], s, &mut qweights[lo..hi]);
        }
        QuantFkwLayer {
            out_c: fkw.out_c,
            in_c: fkw.in_c,
            kernel: fkw.kernel,
            entries_per_kernel: e,
            patterns: fkw.patterns.clone(),
            offsets: fkw.offsets.clone(),
            reorder: fkw.reorder.clone(),
            index: fkw.index.clone(),
            stride: fkw.stride.clone(),
            qweights,
            scales,
            act_scale: scale_for(act_max_abs),
        }
    }

    /// Dequantizes back to an `f32` FKW layer (the weights the INT8
    /// executor effectively computes with). Used by tests and fallbacks;
    /// the round trip loses at most `scale / 2` per weight.
    pub fn to_fkw(&self) -> FkwLayer {
        let e = self.entries_per_kernel;
        let mut weights = vec![0.0f32; self.qweights.len()];
        for (row, f) in self.rows() {
            let lo = self.offsets[row] as usize * e;
            let hi = self.offsets[row + 1] as usize * e;
            let s = self.scales[f];
            for (w, &q) in weights[lo..hi].iter_mut().zip(&self.qweights[lo..hi]) {
                *w = q as f32 * s;
            }
        }
        FkwLayer {
            out_c: self.out_c,
            in_c: self.in_c,
            kernel: self.kernel,
            entries_per_kernel: e,
            patterns: self.patterns.clone(),
            offsets: self.offsets.clone(),
            reorder: self.reorder.clone(),
            index: self.index.clone(),
            stride: self.stride.clone(),
            weights,
        }
    }

    /// Number of stored (non-empty) kernels.
    pub fn stored_kernels(&self) -> usize {
        self.index.len()
    }

    /// Iterates over stored rows: `(row, original_filter)`.
    pub fn rows(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.reorder
            .iter()
            .enumerate()
            .map(|(r, &f)| (r, f as usize))
    }

    /// The kernel range (relative to the whole `index` array) of pattern
    /// `p` in row `row`.
    pub fn pattern_run(&self, row: usize, p: usize) -> std::ops::Range<usize> {
        let np = self.patterns.len();
        let base = self.offsets[row] as usize;
        let lo = self.stride[row * (np + 1) + p] as usize;
        let hi = self.stride[row * (np + 1) + p + 1] as usize;
        base + lo..base + hi
    }

    /// Bytes of index structure (everything except weights and scales).
    pub fn extra_bytes(&self) -> usize {
        self.offsets.len() * 4
            + self.reorder.len() * 2
            + self.index.len() * 2
            + self.stride.len() * 2
            + self.patterns.len() * 2
    }

    /// Total storage footprint in bytes: 1-byte weights plus the shared
    /// index structure, per-filter scales, and the activation scale.
    pub fn total_bytes(&self) -> usize {
        self.extra_bytes() + self.qweights.len() + self.scales.len() * 4 + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fkr::filter_kernel_reorder;
    use patdnn_core::pattern_set::PatternSet;
    use patdnn_core::project::prune_layer;
    use patdnn_tensor::rng::Rng;
    use patdnn_tensor::Tensor;

    fn pruned_fkw(oc: usize, ic: usize, alpha: usize, seed: u64) -> FkwLayer {
        let mut rng = Rng::seed_from(seed);
        let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("t", &mut w, &set, alpha);
        let order = filter_kernel_reorder(&lp);
        FkwLayer::from_pruned(&w, &lp, &set, &order)
    }

    #[test]
    fn scale_for_handles_degenerate_ranges() {
        assert_eq!(scale_for(0.0), 1.0);
        assert_eq!(scale_for(f32::NAN), 1.0);
        assert_eq!(scale_for(f32::INFINITY), 1.0);
        assert!((scale_for(127.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantize_round_trip_error_is_bounded_by_half_scale() {
        let mut rng = Rng::seed_from(1);
        let xs: Vec<f32> = (0..256).map(|_| rng.uniform(-3.0, 3.0)).collect();
        let s = scale_for(max_abs(&xs));
        let qs = quantize_slice(&xs, s);
        for (&x, &q) in xs.iter().zip(&qs) {
            let back = q as f32 * s;
            assert!(
                (x - back).abs() <= s / 2.0 + 1e-6,
                "x {x} -> q {q} -> {back} (scale {s})"
            );
        }
    }

    #[test]
    fn per_filter_scales_are_independent() {
        let fkw = pruned_fkw(8, 8, 32, 2);
        let q = QuantFkwLayer::from_fkw(&fkw, 1.0);
        assert_eq!(q.scales.len(), 8);
        // Each filter's quantized weights must saturate its own range:
        // the loudest code in every non-empty row is exactly ±127.
        let e = q.entries_per_kernel;
        for (row, _) in q.rows() {
            let lo = q.offsets[row] as usize * e;
            let hi = q.offsets[row + 1] as usize * e;
            if lo == hi {
                continue;
            }
            let peak = q.qweights[lo..hi].iter().map(|&v| (v as i32).abs()).max();
            assert_eq!(peak, Some(127), "row {row} wastes quantization range");
        }
    }

    #[test]
    fn dequantized_layer_stays_close_to_the_original() {
        let fkw = pruned_fkw(8, 8, 40, 3);
        let q = QuantFkwLayer::from_fkw(&fkw, 1.0);
        let back = q.to_fkw();
        assert_eq!(back.offsets, fkw.offsets);
        assert_eq!(back.reorder, fkw.reorder);
        assert_eq!(back.index, fkw.index);
        assert_eq!(back.stride, fkw.stride);
        for (row, f) in fkw.rows() {
            let e = fkw.entries_per_kernel;
            let lo = fkw.offsets[row] as usize * e;
            let hi = fkw.offsets[row + 1] as usize * e;
            for (a, b) in fkw.weights[lo..hi].iter().zip(&back.weights[lo..hi]) {
                assert!((a - b).abs() <= q.scales[f] / 2.0 + 1e-6);
            }
        }
    }

    #[test]
    fn quantized_storage_is_a_quarter_of_f32_weights() {
        let fkw = pruned_fkw(16, 8, 64, 4);
        let q = QuantFkwLayer::from_fkw(&fkw, 1.0);
        assert_eq!(q.qweights.len(), fkw.weights.len());
        assert!(q.total_bytes() < fkw.total_bytes());
        // Weight payload specifically shrinks 4x.
        assert_eq!(q.qweights.len() * 4, fkw.weight_bytes());
    }

    #[test]
    fn all_zero_filter_gets_unit_scale_and_zero_codes() {
        let mut fkw = pruned_fkw(4, 4, 8, 5);
        // Zero one stored row's weights in place.
        let e = fkw.entries_per_kernel;
        let lo = fkw.offsets[0] as usize * e;
        let hi = fkw.offsets[1] as usize * e;
        for w in &mut fkw.weights[lo..hi] {
            *w = 0.0;
        }
        let q = QuantFkwLayer::from_fkw(&fkw, 1.0);
        let f = fkw.reorder[0] as usize;
        assert_eq!(q.scales[f], 1.0);
        assert!(q.qweights[lo..hi].iter().all(|&v| v == 0));
    }
}
