//! Graph optimization passes (the TVM-like stage of §5, Table 1).
//!
//! Implemented passes: batch-norm folding into the preceding convolution
//! (constant folding of the affine pair), ReLU fusion into convolutions
//! and residual joins, identity elimination, and dead-node elimination.
//! All passes are DAG-correct: fusion and folding fire only when the
//! producer has a single consumer, so values feeding a skip path are
//! never rewritten underneath their other users.

use crate::graph::{Graph, Op};

/// Before/after node counts of one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassReport {
    /// Pass name.
    pub pass: String,
    /// Node count before.
    pub before: usize,
    /// Node count after (identity nodes still count until DCE).
    pub after: usize,
}

/// Folds `Conv → BatchNorm` pairs: the BN affine transform is absorbed
/// into the conv weights/bias (when materialized) and the BN node becomes
/// an identity. Only fires when the conv's sole user is the BN.
pub fn fold_batchnorm(g: &mut Graph) -> PassReport {
    let before = live_nodes(g);
    for bn_id in 0..g.nodes.len() {
        let Op::BatchNorm { scale, shift } = &g.nodes[bn_id].op else {
            continue;
        };
        let (scale, shift) = (scale.clone(), shift.clone());
        let [conv_id] = g.nodes[bn_id].inputs[..] else {
            continue;
        };
        if !matches!(g.nodes[conv_id].op, Op::Conv { .. }) || g.users(conv_id).len() != 1 {
            continue;
        }
        // Fold the affine pair into the convolution.
        if let Op::Conv {
            out_c,
            in_c,
            kernel,
            weights,
            bias,
            ..
        } = &mut g.nodes[conv_id].op
        {
            if scale.len() != *out_c {
                continue;
            }
            if let Some(w) = weights {
                let fsize = *in_c * *kernel * *kernel;
                for oc in 0..*out_c {
                    for v in &mut w.data_mut()[oc * fsize..(oc + 1) * fsize] {
                        *v *= scale[oc];
                    }
                }
            }
            let new_bias: Vec<f32> = match bias {
                Some(b) => b
                    .iter()
                    .zip(scale.iter().zip(&shift))
                    .map(|(&b, (&s, &t))| b * s + t)
                    .collect(),
                None => shift.clone(),
            };
            *bias = Some(new_bias);
        }
        // The BN node becomes an identity feeding its users.
        g.nodes[bn_id].op = Op::Identity;
    }
    eliminate_identities(g);
    PassReport {
        pass: "fold_batchnorm".into(),
        before,
        after: live_nodes(g),
    }
}

/// Fuses `Conv → ReLU` and `Add → ReLU` pairs by setting the producer's
/// `fused_relu` flag. Only fires when the producer's sole user is the
/// ReLU — a conv whose output also feeds a residual skip keeps its ReLU
/// standalone, because the skip path must see the pre-activation value.
pub fn fuse_relu(g: &mut Graph) -> PassReport {
    let before = live_nodes(g);
    for relu_id in 0..g.nodes.len() {
        if !matches!(g.nodes[relu_id].op, Op::Relu) {
            continue;
        }
        let [prod_id] = g.nodes[relu_id].inputs[..] else {
            continue;
        };
        if g.users(prod_id).len() != 1 {
            continue;
        }
        match &mut g.nodes[prod_id].op {
            Op::Conv { fused_relu, .. } | Op::Add { fused_relu } => {
                *fused_relu = true;
                g.nodes[relu_id].op = Op::Identity;
            }
            _ => {}
        }
    }
    eliminate_identities(g);
    PassReport {
        pass: "fuse_relu".into(),
        before,
        after: live_nodes(g),
    }
}

/// Rewires edges around identity nodes so they become dead.
pub fn eliminate_identities(g: &mut Graph) {
    for id in 0..g.nodes.len() {
        if !matches!(g.nodes[id].op, Op::Identity) {
            continue;
        }
        let [src] = g.nodes[id].inputs[..] else {
            continue;
        };
        for user in g.users(id) {
            for input in &mut g.nodes[user].inputs {
                if *input == id {
                    *input = src;
                }
            }
        }
        if g.output == id {
            g.output = src;
        }
        // Drop the identity's own edge so it no longer counts as a user
        // of its producer (it is dead now).
        g.nodes[id].inputs.clear();
    }
}

/// Removes nodes unreachable from the output, compacting indices.
pub fn eliminate_dead_nodes(g: &mut Graph) -> PassReport {
    let before = g.nodes.len();
    let mut live = vec![false; g.nodes.len()];
    let mut stack = vec![g.output];
    while let Some(id) = stack.pop() {
        if live[id] {
            continue;
        }
        live[id] = true;
        stack.extend(&g.nodes[id].inputs);
    }
    let mut remap = vec![usize::MAX; g.nodes.len()];
    let mut new_nodes = Vec::with_capacity(live.iter().filter(|&&l| l).count());
    for (id, node) in g.nodes.iter().enumerate() {
        if live[id] {
            remap[id] = new_nodes.len();
            new_nodes.push(node.clone());
        }
    }
    for node in &mut new_nodes {
        for input in &mut node.inputs {
            *input = remap[*input];
            assert_ne!(*input, usize::MAX, "live node fed by dead node");
        }
    }
    g.output = remap[g.output];
    g.nodes = new_nodes;
    PassReport {
        pass: "dead_node_elimination".into(),
        before,
        after: g.nodes.len(),
    }
}

fn live_nodes(g: &Graph) -> usize {
    g.nodes
        .iter()
        .filter(|n| !matches!(n.op, Op::Identity))
        .count()
}

/// Runs the full pass pipeline in order, returning per-pass reports.
pub fn optimize(g: &mut Graph) -> Vec<PassReport> {
    let mut reports = vec![fold_batchnorm(g), fuse_relu(g)];
    reports.push(eliminate_dead_nodes(g));
    assert!(g.is_topologically_sorted(), "passes must preserve topology");
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use patdnn_tensor::rng::Rng;
    use patdnn_tensor::Tensor;

    #[test]
    fn conv_bn_relu_chain_collapses_to_fused_convs() {
        let mut g = Graph::conv_chain(
            &[1, 3, 16, 16],
            &[("c1", 8, 3, 3, 1, 1), ("c2", 8, 8, 3, 1, 1)],
            true,
            true,
        );
        let reports = optimize(&mut g);
        assert_eq!(g.count_kind("batchnorm"), 0);
        assert_eq!(g.count_kind("relu"), 0);
        assert_eq!(g.count_kind("conv"), 2);
        // input + 2 fused convs
        assert_eq!(g.nodes.len(), 3);
        for n in &g.nodes {
            if let Op::Conv {
                fused_relu, bias, ..
            } = &n.op
            {
                assert!(*fused_relu, "relu fused into {}", n.name);
                assert!(bias.is_some(), "bn folded into bias of {}", n.name);
            }
        }
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.after <= r.before));
    }

    #[test]
    fn bn_fold_preserves_semantics_on_materialized_weights() {
        // y = BN(conv(x)) must equal conv'(x) after folding.
        let mut rng = Rng::seed_from(1);
        let weights = Tensor::randn(&[2, 1, 3, 3], &mut rng);
        let scale = vec![2.0f32, 0.5];
        let shift = vec![0.25f32, -1.0];

        let mut g = Graph::with_input(&[1, 1, 5, 5]);
        let conv = g.push(
            "c",
            Op::Conv {
                out_c: 2,
                in_c: 1,
                kernel: 3,
                stride: 1,
                pad: 1,
                weights: Some(weights.clone()),
                bias: Some(vec![0.1, 0.2]),
                fused_relu: false,
            },
            &[0],
        );
        g.push(
            "bn",
            Op::BatchNorm {
                scale: scale.clone(),
                shift: shift.clone(),
            },
            &[conv],
        );
        fold_batchnorm(&mut g);
        eliminate_dead_nodes(&mut g);

        let x = Tensor::randn(&[1, 1, 5, 5], &mut rng);
        let geo = patdnn_tensor::Conv2dGeometry::new(2, 1, 3, 3, 5, 5, 1, 1);
        // Reference: conv then affine.
        let ref_out = patdnn_tensor::conv2d_ref(&x, &weights, Some(&[0.1, 0.2]), &geo);
        let mut expect = ref_out.clone();
        let hw = 25;
        for oc in 0..2 {
            for v in &mut expect.data_mut()[oc * hw..(oc + 1) * hw] {
                *v = *v * scale[oc] + shift[oc];
            }
        }
        // Folded: conv with scaled weights and folded bias.
        let Op::Conv {
            weights: Some(fw),
            bias: Some(fb),
            ..
        } = &g.nodes[1].op
        else {
            panic!("conv survived folding");
        };
        let folded_out = patdnn_tensor::conv2d_ref(&x, fw, Some(fb), &geo);
        assert!(
            expect.approx_eq(&folded_out, 1e-4),
            "diff {:?}",
            expect.max_abs_diff(&folded_out)
        );
    }

    #[test]
    fn relu_with_multiple_users_is_not_fused() {
        let mut g = Graph::with_input(&[1, 1, 4, 4]);
        let conv = g.push(
            "c",
            Op::Conv {
                out_c: 1,
                in_c: 1,
                kernel: 3,
                stride: 1,
                pad: 1,
                weights: None,
                bias: None,
                fused_relu: false,
            },
            &[0],
        );
        let relu = g.push("r", Op::Relu, &[conv]);
        // Second consumer of the conv: an Add joining conv and relu.
        g.push("join", Op::Add { fused_relu: false }, &[conv, relu]);
        fuse_relu(&mut g);
        assert_eq!(g.count_kind("relu"), 1, "fusion must not fire");
    }

    #[test]
    fn relu_after_join_fuses_into_add() {
        let mut g = Graph::with_input(&[1, 2, 4, 4]);
        let join = g.push("join", Op::Add { fused_relu: false }, &[0, 0]);
        g.push("out_relu", Op::Relu, &[join]);
        fuse_relu(&mut g);
        eliminate_dead_nodes(&mut g);
        assert_eq!(g.count_kind("relu"), 0);
        let Op::Add { fused_relu } = g.nodes[g.output].op else {
            panic!("add survives as the output");
        };
        assert!(fused_relu, "relu fused into the join");
    }

    #[test]
    fn bn_fold_skips_conv_feeding_a_skip_path() {
        // conv feeds both its BN and a residual Add: folding the BN into
        // the conv would corrupt the skip path, so the pass must not fire.
        let mut g = Graph::with_input(&[1, 2, 4, 4]);
        let conv = g.push(
            "c",
            Op::Conv {
                out_c: 2,
                in_c: 2,
                kernel: 3,
                stride: 1,
                pad: 1,
                weights: None,
                bias: None,
                fused_relu: false,
            },
            &[0],
        );
        let bn = g.push(
            "bn",
            Op::BatchNorm {
                scale: vec![2.0; 2],
                shift: vec![0.5; 2],
            },
            &[conv],
        );
        g.push("join", Op::Add { fused_relu: false }, &[bn, conv]);
        fold_batchnorm(&mut g);
        assert_eq!(g.count_kind("batchnorm"), 1, "fold must not fire");
    }

    #[test]
    fn optimize_residual_graph_keeps_join_and_topology() {
        // stem -> [conv+bn+relu -> conv+bn] + identity -> add -> relu.
        let mut g = Graph::with_input(&[1, 4, 8, 8]);
        let conv = |out_c| Op::Conv {
            out_c,
            in_c: 4,
            kernel: 3,
            stride: 1,
            pad: 1,
            weights: None,
            bias: None,
            fused_relu: false,
        };
        let bn = || Op::BatchNorm {
            scale: vec![1.0; 4],
            shift: vec![0.0; 4],
        };
        let join = g.residual_block(
            "block",
            0,
            |g, x| {
                let c1 = g.push("c1", conv(4), &[x]);
                let b1 = g.push("b1", bn(), &[c1]);
                let r1 = g.push("r1", Op::Relu, &[b1]);
                let c2 = g.push("c2", conv(4), &[r1]);
                g.push("b2", bn(), &[c2])
            },
            Graph::IDENTITY_SHORTCUT,
        );
        g.push("out_relu", Op::Relu, &[join]);
        optimize(&mut g);
        assert!(g.is_topologically_sorted());
        assert_eq!(g.count_kind("batchnorm"), 0, "both BNs folded");
        assert_eq!(g.count_kind("relu"), 0, "both relus fused");
        assert_eq!(g.count_kind("add"), 1, "join survives");
        let add = g
            .nodes
            .iter()
            .position(|n| n.op.kind() == "add")
            .expect("join");
        let Op::Add { fused_relu } = g.nodes[add].op else {
            unreachable!()
        };
        assert!(fused_relu, "post-join relu fused into the add");
        // Identity skip: the join still reads the graph input directly.
        assert!(g.nodes[add].inputs.contains(&0));
    }

    #[test]
    fn dead_nodes_are_removed() {
        let mut g = Graph::with_input(&[1, 1, 4, 4]);
        let live = g.push("live", Op::Relu, &[0]);
        g.push("dead", Op::Relu, &[0]);
        g.output = live;
        let report = eliminate_dead_nodes(&mut g);
        assert_eq!(report.before, 3);
        assert_eq!(report.after, 2);
        assert!(g.nodes.iter().all(|n| n.name != "dead"));
        assert!(g.is_topologically_sorted());
    }
}
