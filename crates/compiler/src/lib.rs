//! # patdnn-compiler
//!
//! PatDNN's execution code generation stage (§5 of the paper).
//!
//! "Compiler optimizations play the key role in 'recovering' the
//! performance loss due to the fine-grained pattern-based pruning compared
//! to fully structured pruning." The stage comprises:
//!
//! - [`graph`] / [`passes`] — computational-graph IR and the TVM-like
//!   graph optimizations (conv+BN folding, activation fusion, dead-node
//!   elimination).
//! - [`lr`] — the high-level, fine-grained **Layerwise Representation**
//!   (Figure 8) carrying pattern, storage, and tuning metadata per layer.
//! - [`fkr`] — **Filter-Kernel Reorder** (Figure 9): group filters by
//!   length, order similar filters together, sort kernels by pattern.
//! - [`fkw`] — the **FKW compressed weight storage** format (Figure 10)
//!   with its offset/reorder/index/stride/weight arrays; [`csr`] is the
//!   CSR baseline it is compared against (Figure 16).
//! - [`lre`] — register-level **Load Redundancy Elimination** analysis
//!   (Figure 11): kernel-level and filter-level redundant-load counting.
//! - [`codegen`] — emits the C-like execution kernels of Figure 7
//!   (`No-opt`, `+Reorder`, `+LRE`, `+Tune`).
//! - [`tune`] — parameter auto-tuning (§5.5): a Genetic-Algorithm
//!   explorer plus an MLP performance estimator trained on history.

pub mod codegen;
pub mod csr;
pub mod fkr;
pub mod fkw;
pub mod graph;
pub mod lr;
pub mod lre;
pub mod passes;
pub mod quant;
pub mod tune;

pub use fkr::{filter_kernel_reorder, FilterOrder};
pub use fkw::FkwLayer;
pub use lr::LayerLr;
pub use quant::QuantFkwLayer;
pub use tune::space::{ConvAlgo, LoopPermutation, TuningConfig};
