//! Register-level Load Redundancy Elimination (LRE) analysis — §5.4,
//! Figure 11.
//!
//! Two register-level redundancies exist in pattern-pruned convolution:
//!
//! - **kernel-level**: consecutive output pixels computed by one kernel
//!   touch overlapping input rows/columns; with the pattern known at
//!   compile time the overlapping elements can stay in registers.
//! - **filter-level**: kernels at the same input channel with the same
//!   pattern in *different* filters read identical input elements; after
//!   FKR groups them, an output-channel unroll loads them once.
//!
//! This module counts register loads for each elimination level; the
//! runtime's instrumented executor independently counts actual loads and
//! the two are cross-checked in tests. Figure 14(b) plots the
//! [`LreLevel::None`] vs [`LreLevel::KernelFilter`] totals.

use patdnn_core::pattern::Pattern;
use patdnn_tensor::Conv2dGeometry;

use crate::fkw::FkwLayer;

/// Which load redundancies are eliminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LreLevel {
    /// No elimination: every tap of every kernel loads per output pixel.
    None,
    /// Kernel-level elimination only.
    Kernel,
    /// Kernel- plus filter-level elimination (full LRE).
    KernelFilter,
}

/// Register-load totals for one layer execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadCounts {
    /// Input (feature-map) register loads.
    pub input_loads: u64,
    /// Weight register loads.
    pub weight_loads: u64,
}

impl LoadCounts {
    /// Total register loads.
    pub fn total(&self) -> u64 {
        self.input_loads + self.weight_loads
    }
}

/// Distinct input elements a pattern touches across `unroll_w` horizontally
/// consecutive stride-1 output pixels (the kernel-level reuse window).
fn kernel_window_loads(pattern: &Pattern, unroll_w: usize) -> u64 {
    let k = pattern.kernel();
    let mut total = 0u64;
    for r in 0..k {
        // Columns this row of the pattern touches, shifted across the
        // unrolled outputs.
        let mut touched = vec![false; k + unroll_w];
        let mut any = false;
        for c in 0..k {
            if pattern.contains(r, c) {
                any = true;
                for j in 0..unroll_w {
                    touched[c + j] = true;
                }
            }
        }
        if any {
            total += touched.iter().filter(|&&t| t).count() as u64;
        }
    }
    total
}

/// Counts register loads for executing a pattern layer in FKW storage
/// order with the given unroll factors.
///
/// The model mirrors the generated code: output pixels are processed in
/// windows of `unroll_w`, filter rows in chunks of `unroll_oc` (chunks
/// never straddle FKR groups in the real executor, but load counts do
/// not depend on that). Weight loads always occur once per window per
/// stored weight — weights have no cross-window reuse.
pub fn register_loads(
    geo: &Conv2dGeometry,
    fkw: &FkwLayer,
    unroll_w: usize,
    unroll_oc: usize,
    level: LreLevel,
) -> LoadCounts {
    assert!(
        unroll_w >= 1 && unroll_oc >= 1,
        "unroll factors must be >= 1"
    );
    let windows_per_row = geo.out_w.div_ceil(unroll_w) as u64;
    let windows = geo.out_h as u64 * windows_per_row;
    let np = fkw.patterns.len();

    let mut input_per_window = 0u64;
    let mut weight_per_window = 0u64;

    let rows: Vec<usize> = (0..fkw.out_c).collect();
    for chunk in rows.chunks(unroll_oc) {
        match level {
            LreLevel::None | LreLevel::Kernel => {
                for &row in chunk {
                    for p in 0..np {
                        let run = fkw.pattern_run(row, p).len() as u64;
                        let entries = fkw.patterns[p].entries() as u64;
                        weight_per_window += run * entries;
                        input_per_window += run
                            * match level {
                                LreLevel::None => entries * unroll_w as u64,
                                _ => kernel_window_loads(&fkw.patterns[p], unroll_w),
                            };
                    }
                }
            }
            LreLevel::KernelFilter => {
                // Input loads: distinct (pattern, input channel) kernels in
                // the chunk load once; weights still load per filter.
                let mut seen: std::collections::HashSet<(usize, u16)> =
                    std::collections::HashSet::new();
                for &row in chunk {
                    for p in 0..np {
                        let entries = fkw.patterns[p].entries() as u64;
                        for k in fkw.pattern_run(row, p) {
                            weight_per_window += entries;
                            if seen.insert((p, fkw.index[k])) {
                                input_per_window += kernel_window_loads(&fkw.patterns[p], unroll_w);
                            }
                        }
                    }
                }
            }
        }
    }

    LoadCounts {
        input_loads: input_per_window * windows,
        weight_loads: weight_per_window * windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fkr::{filter_kernel_reorder, FilterOrder};
    use patdnn_core::pattern_set::PatternSet;
    use patdnn_core::project::prune_layer;
    use patdnn_tensor::rng::Rng;
    use patdnn_tensor::Tensor;

    fn build(
        oc: usize,
        ic: usize,
        hw: usize,
        alpha: usize,
        seed: u64,
    ) -> (Conv2dGeometry, FkwLayer) {
        let mut rng = Rng::seed_from(seed);
        let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("t", &mut w, &set, alpha);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        let geo = Conv2dGeometry::new(oc, ic, 3, 3, hw, hw, 1, 1);
        (geo, fkw)
    }

    #[test]
    fn no_unroll_no_kernel_gain() {
        // With unroll_w = 1 there is no horizontal window, so kernel-level
        // LRE equals no elimination... unless a pattern has multiple taps
        // in the same (row, col) — impossible — so the counts match when
        // each pattern's window loads equal its entries.
        let (geo, fkw) = build(8, 8, 8, 32, 1);
        let none = register_loads(&geo, &fkw, 1, 1, LreLevel::None);
        let kernel = register_loads(&geo, &fkw, 1, 1, LreLevel::Kernel);
        assert_eq!(none, kernel);
    }

    #[test]
    fn kernel_lre_reduces_loads_with_unrolling() {
        let (geo, fkw) = build(8, 8, 16, 32, 2);
        let none = register_loads(&geo, &fkw, 4, 1, LreLevel::None);
        let kernel = register_loads(&geo, &fkw, 4, 1, LreLevel::Kernel);
        assert!(
            kernel.input_loads < none.input_loads,
            "kernel LRE must reduce input loads: {kernel:?} vs {none:?}"
        );
        assert_eq!(kernel.weight_loads, none.weight_loads);
    }

    #[test]
    fn filter_lre_reduces_loads_with_oc_unrolling() {
        let (geo, fkw) = build(16, 8, 16, 96, 3);
        let kernel = register_loads(&geo, &fkw, 4, 4, LreLevel::Kernel);
        let full = register_loads(&geo, &fkw, 4, 4, LreLevel::KernelFilter);
        assert!(
            full.input_loads < kernel.input_loads,
            "filter LRE must reduce input loads further: {full:?} vs {kernel:?}"
        );
        assert_eq!(full.weight_loads, kernel.weight_loads);
    }

    #[test]
    fn filter_lre_without_oc_unroll_matches_kernel_level() {
        let (geo, fkw) = build(8, 8, 8, 40, 4);
        let kernel = register_loads(&geo, &fkw, 2, 1, LreLevel::Kernel);
        let full = register_loads(&geo, &fkw, 2, 1, LreLevel::KernelFilter);
        assert_eq!(kernel, full, "chunks of one filter cannot share loads");
    }

    #[test]
    fn window_loads_hand_case() {
        // Vertical-line pattern: column 1 in all three rows plus centre
        // column 0 (4 entries). For unroll 2 each touched row loads
        // contiguous spans.
        let p = Pattern::from_positions(3, &[(0, 1), (1, 0), (1, 1), (2, 1)]);
        // Row 0: col {1} -> {1,2} = 2 loads; row 1: cols {0,1} -> {0,1,2} = 3;
        // row 2: col {1} -> 2. Total 7.
        assert_eq!(kernel_window_loads(&p, 2), 7);
        // Without unrolling: exactly the 4 entries.
        assert_eq!(kernel_window_loads(&p, 1), 4);
    }

    #[test]
    fn loads_scale_with_output_size() {
        let (geo8, fkw) = build(8, 8, 8, 32, 5);
        let geo16 = Conv2dGeometry::new(8, 8, 3, 3, 16, 16, 1, 1);
        let small = register_loads(&geo8, &fkw, 2, 2, LreLevel::KernelFilter);
        let large = register_loads(&geo16, &fkw, 2, 2, LreLevel::KernelFilter);
        let ratio = large.total() as f64 / small.total() as f64;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn identity_vs_reordered_storage_same_none_counts() {
        // Without filter-level sharing, load counts are storage-order
        // independent.
        let mut rng = Rng::seed_from(6);
        let mut w = Tensor::randn(&[8, 8, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("t", &mut w, &set, 32);
        let geo = Conv2dGeometry::new(8, 8, 3, 3, 8, 8, 1, 1);
        let a = FkwLayer::from_pruned(&w, &lp, &set, &FilterOrder::identity(&lp));
        let b = FkwLayer::from_pruned(&w, &lp, &set, &filter_kernel_reorder(&lp));
        let la = register_loads(&geo, &a, 2, 1, LreLevel::Kernel);
        let lb = register_loads(&geo, &b, 2, 1, LreLevel::Kernel);
        assert_eq!(la, lb);
    }
}
