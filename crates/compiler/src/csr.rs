//! CSR sparse storage — the conventional format FKW is compared against.
//!
//! The paper implements "an optimized sparse matrix version of PatDNN
//! based on CSR" (§6.2) to show that generic sparse formats cannot
//! convert pattern sparsity into speedups, and Figure 16 compares the
//! extra data-structure overhead of FKW against CSR.

use patdnn_tensor::Tensor;

/// A pruned conv layer's weights in compressed-sparse-row form.
///
/// The layer is viewed as an `out_c × (in_c·k²)` matrix; one row per
/// filter, one 32-bit column index per non-zero weight (the standard
/// layout of clSPARSE-style libraries).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrLayer {
    /// Number of filters (matrix rows).
    pub out_c: usize,
    /// Number of input channels.
    pub in_c: usize,
    /// Kernel size (square).
    pub kernel: usize,
    /// Row pointers, `out_c + 1` entries.
    pub row_ptr: Vec<u32>,
    /// Column index per non-zero (flattened `(ic, kh, kw)`).
    pub col_idx: Vec<u32>,
    /// Non-zero values.
    pub values: Vec<f32>,
}

impl CsrLayer {
    /// Compresses a (pruned) dense OIHW tensor.
    pub fn from_dense(weights: &Tensor) -> Self {
        let s = weights.shape4();
        let cols = s.c * s.h * s.w;
        let mut row_ptr = Vec::with_capacity(s.n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        for oc in 0..s.n {
            let base = oc * cols;
            for col in 0..cols {
                let v = weights.data()[base + col];
                if v != 0.0 {
                    col_idx.push(col as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        CsrLayer {
            out_c: s.n,
            in_c: s.c,
            kernel: s.h,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Reconstructs the dense OIHW tensor.
    pub fn to_dense(&self) -> Tensor {
        let cols = self.in_c * self.kernel * self.kernel;
        let mut out = Tensor::zeros(&[self.out_c, self.in_c, self.kernel, self.kernel]);
        for oc in 0..self.out_c {
            for i in self.row_ptr[oc] as usize..self.row_ptr[oc + 1] as usize {
                out.data_mut()[oc * cols + self.col_idx[i] as usize] = self.values[i];
            }
        }
        out
    }

    /// Number of non-zero weights.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Decodes a column index into `(input channel, kernel row, kernel
    /// col)`.
    pub fn decode_col(&self, col: u32) -> (usize, usize, usize) {
        let ksize = self.kernel * self.kernel;
        let col = col as usize;
        (col / ksize, (col % ksize) / self.kernel, col % self.kernel)
    }

    /// Bytes of index structure (row pointers + column indices).
    pub fn extra_bytes(&self) -> usize {
        self.row_ptr.len() * 4 + self.col_idx.len() * 4
    }

    /// Bytes of stored weights.
    pub fn weight_bytes(&self) -> usize {
        self.values.len() * 4
    }

    /// Total storage footprint.
    pub fn total_bytes(&self) -> usize {
        self.extra_bytes() + self.weight_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patdnn_core::pattern_set::PatternSet;
    use patdnn_core::project::prune_layer;
    use patdnn_tensor::rng::Rng;

    #[test]
    fn round_trip_is_lossless() {
        let mut rng = Rng::seed_from(1);
        let mut w = Tensor::randn(&[8, 4, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        prune_layer("t", &mut w, &set, 16);
        let csr = CsrLayer::from_dense(&w);
        assert_eq!(csr.to_dense(), w);
        assert_eq!(csr.nnz(), w.count_nonzero());
    }

    #[test]
    fn decode_col_inverts_flattening() {
        let csr = CsrLayer {
            out_c: 1,
            in_c: 4,
            kernel: 3,
            row_ptr: vec![0, 0],
            col_idx: vec![],
            values: vec![],
        };
        for ic in 0..4 {
            for kh in 0..3 {
                for kw in 0..3 {
                    let col = (ic * 9 + kh * 3 + kw) as u32;
                    assert_eq!(csr.decode_col(col), (ic, kh, kw));
                }
            }
        }
    }

    #[test]
    fn fkw_overhead_is_much_smaller_than_csr() {
        // The Figure 16 relationship: at 4-entry pattern sparsity, CSR
        // spends 4 bytes per weight on column indices while FKW spends 2
        // bytes per *kernel*, i.e. ~1/8 of that.
        use crate::fkr::filter_kernel_reorder;
        use crate::fkw::FkwLayer;
        let mut rng = Rng::seed_from(2);
        let mut w = Tensor::randn(&[64, 64, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("t", &mut w, &set, 64 * 64 / 4);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        let csr = CsrLayer::from_dense(&w);
        let ratio = fkw.extra_bytes() as f64 / csr.extra_bytes() as f64;
        assert!(ratio < 0.30, "FKW/CSR overhead ratio {ratio:.3}");
    }

    #[test]
    fn empty_rows_are_representable() {
        let w = Tensor::zeros(&[3, 2, 3, 3]);
        let csr = CsrLayer::from_dense(&w);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.row_ptr, vec![0, 0, 0, 0]);
        assert_eq!(csr.to_dense(), w);
    }
}
