//! The auto-tuner orchestration: GA exploration with history collection
//! and estimator hand-off.

use patdnn_tensor::rng::Rng;

use super::estimator::PerfEstimator;
use super::ga::{GaConfig, GaExplorer};
use super::space::{ConfigSpace, TuningConfig};

/// Result of tuning one layer.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// The best configuration found.
    pub best: TuningConfig,
    /// Its measured cost (e.g. seconds, simulated cycles).
    pub best_cost: f64,
    /// Number of measurements taken.
    pub measurements: usize,
}

/// Explores the configuration space per layer, recording every
/// measurement as history for the performance estimator.
pub struct AutoTuner {
    space: ConfigSpace,
    ga: GaConfig,
    history: Vec<(TuningConfig, f64)>,
}

impl AutoTuner {
    /// Creates a tuner over the standard space.
    pub fn new() -> Self {
        AutoTuner {
            space: ConfigSpace::standard(),
            ga: GaConfig::default(),
            history: Vec::new(),
        }
    }

    /// Creates a tuner with explicit space and GA settings.
    pub fn with_config(space: ConfigSpace, ga: GaConfig) -> Self {
        AutoTuner {
            space,
            ga,
            history: Vec::new(),
        }
    }

    /// The configuration space being explored.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// All `(config, cost)` measurements collected so far.
    pub fn history(&self) -> &[(TuningConfig, f64)] {
        &self.history
    }

    /// Tunes one layer by GA over the measured cost function.
    pub fn tune(
        &mut self,
        mut measure: impl FnMut(&TuningConfig) -> f64,
        rng: &mut Rng,
    ) -> TuningResult {
        let explorer = GaExplorer::new(self.ga.clone());
        let history = &mut self.history;
        let out = explorer.optimize(
            &self.space,
            |cfg| {
                let cost = measure(cfg);
                history.push((*cfg, cost));
                cost
            },
            rng,
        );
        TuningResult {
            best: out.best,
            best_cost: out.best_cost,
            measurements: out.evaluations,
        }
    }

    /// Trains an MLP estimator on the collected history.
    ///
    /// # Panics
    ///
    /// Panics if no history has been collected.
    pub fn train_estimator(&self, epochs: usize, rng: &mut Rng) -> PerfEstimator {
        assert!(!self.history.is_empty(), "no tuning history collected yet");
        let xs: Vec<Vec<f32>> = self.history.iter().map(|(c, _)| c.features()).collect();
        let ys: Vec<f64> = self.history.iter().map(|&(_, y)| y).collect();
        let mut est = PerfEstimator::new(xs[0].len(), rng);
        est.fit(&xs, &ys, epochs, rng);
        est
    }

    /// Predicts the best configuration on a new platform using the
    /// estimator only (no measurements) — the paper's quick-deployment
    /// path.
    pub fn predict_best(&self, est: &mut PerfEstimator) -> (TuningConfig, f64) {
        self.space
            .enumerate()
            .into_iter()
            .map(|c| {
                let p = est.predict(&c.features());
                (c, p)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite predictions"))
            .expect("space non-empty")
    }
}

impl Default for AutoTuner {
    fn default() -> Self {
        AutoTuner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tune::space::LoopPermutation;

    fn synthetic_cost(cfg: &TuningConfig) -> f64 {
        let mut cost = 5.0;
        if cfg.permute != LoopPermutation::CoHwCi {
            cost += 2.0;
        }
        if !cfg.blocked {
            cost += 1.0;
        }
        cost + ((cfg.unroll_w as f64).log2() - 3.0).abs()
    }

    #[test]
    fn tuner_finds_good_config_and_collects_history() {
        let mut tuner = AutoTuner::new();
        let mut rng = Rng::seed_from(1);
        let result = tuner.tune(synthetic_cost, &mut rng);
        assert!((result.best_cost - 5.0).abs() < 1e-9, "{result:?}");
        assert_eq!(result.best.unroll_w, 8);
        assert_eq!(tuner.history().len(), result.measurements);
    }

    #[test]
    fn estimator_predicts_a_near_optimal_config() {
        let mut tuner = AutoTuner::new();
        let mut rng = Rng::seed_from(2);
        // Collect history across several tuning runs for coverage.
        for _ in 0..4 {
            tuner.tune(synthetic_cost, &mut rng);
        }
        let mut est = tuner.train_estimator(80, &mut rng);
        let (cfg, predicted) = tuner.predict_best(&mut est);
        let actual = synthetic_cost(&cfg);
        // The predicted-best config should be close to the true optimum 5.0.
        assert!(
            actual <= 6.5,
            "predicted config {cfg:?} has cost {actual} (predicted {predicted})"
        );
    }
}
