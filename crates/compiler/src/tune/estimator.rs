//! MLP performance estimator.
//!
//! "During the exploration, history data is also collected for training
//! the performance estimator (based on Multilayer Perceptron and least
//! square regression loss). [...] when deploying PatDNN on a new
//! platform, it can give a quick prediction of the optimal configuration
//! parameters as well as the possible execution time" (§5.5).

use patdnn_nn::activation::Relu;
use patdnn_nn::layer::{Layer, Mode};
use patdnn_nn::linear::Linear;
use patdnn_nn::network::Sequential;
use patdnn_nn::optim::{Adam, Optimizer};
use patdnn_tensor::rng::Rng;
use patdnn_tensor::Tensor;

/// A small MLP regressor mapping tuning-config features to predicted
/// execution cost, trained with least-squares loss.
pub struct PerfEstimator {
    net: Sequential,
    feat_dim: usize,
    /// Normalization: mean of targets seen during fitting.
    target_mean: f32,
    /// Normalization: standard deviation of targets.
    target_std: f32,
}

impl PerfEstimator {
    /// Creates an untrained estimator for `feat_dim`-dimensional features.
    pub fn new(feat_dim: usize, rng: &mut Rng) -> Self {
        let mut net = Sequential::new("perf_mlp");
        net.push(Linear::new("h1", 32, feat_dim, rng));
        net.push(Relu::new("a1"));
        net.push(Linear::new("h2", 16, 32, rng));
        net.push(Relu::new("a2"));
        net.push(Linear::new("out", 1, 16, rng));
        PerfEstimator {
            net,
            feat_dim,
            target_mean: 0.0,
            target_std: 1.0,
        }
    }

    /// Fits the estimator on `(features, cost)` history with mini-batch
    /// Adam and mean-squared-error loss.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` disagree in length, are empty, or any
    /// feature vector has the wrong dimension.
    pub fn fit(&mut self, xs: &[Vec<f32>], ys: &[f64], epochs: usize, rng: &mut Rng) {
        assert_eq!(xs.len(), ys.len(), "one target per feature vector");
        assert!(!xs.is_empty(), "cannot fit on empty history");
        for x in xs {
            assert_eq!(x.len(), self.feat_dim, "feature dimension mismatch");
        }
        // Normalize targets for stable regression.
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let var = ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / ys.len() as f64;
        self.target_mean = mean as f32;
        self.target_std = (var.sqrt() as f32).max(1e-6);

        let mut opt = Adam::new(5e-3);
        let n = xs.len();
        let batch = 16.min(n);
        for _ in 0..epochs {
            let mut order: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut order);
            for chunk in order.chunks(batch) {
                let mut xbuf = Vec::with_capacity(chunk.len() * self.feat_dim);
                let mut tbuf = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    xbuf.extend_from_slice(&xs[i]);
                    tbuf.push((ys[i] as f32 - self.target_mean) / self.target_std);
                }
                let x =
                    Tensor::from_vec(&[chunk.len(), self.feat_dim], xbuf).expect("batch assembly");
                self.net.zero_grads();
                let pred = self.net.forward(&x, Mode::Train);
                // MSE gradient: 2 (pred - target) / n.
                let mut grad = pred.clone();
                for (g, &t) in grad.data_mut().iter_mut().zip(&tbuf) {
                    *g = 2.0 * (*g - t) / chunk.len() as f32;
                }
                self.net.backward(&grad);
                opt.step(&mut self.net);
            }
        }
    }

    /// Predicts the cost of a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the feature dimension differs from construction.
    pub fn predict(&mut self, x: &[f32]) -> f64 {
        assert_eq!(x.len(), self.feat_dim, "feature dimension mismatch");
        let t = Tensor::from_vec(&[1, self.feat_dim], x.to_vec()).expect("single row");
        let y = self.net.forward(&t, Mode::Eval);
        (y.data()[0] * self.target_std + self.target_mean) as f64
    }

    /// Mean squared error on a held-out set.
    pub fn mse(&mut self, xs: &[Vec<f32>], ys: &[f64]) -> f64 {
        assert_eq!(xs.len(), ys.len(), "one target per feature vector");
        let mut acc = 0.0f64;
        for (x, &y) in xs.iter().zip(ys) {
            let p = self.predict(x);
            acc += (p - y) * (p - y);
        }
        acc / xs.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth synthetic cost over 6 features.
    fn cost(x: &[f32]) -> f64 {
        (1.0 + x[0] as f64) * 2.0 + (x[2] as f64 - 0.5).powi(2) * 8.0 + x[4] as f64 * 3.0
    }

    fn dataset(n: usize, rng: &mut Rng) -> (Vec<Vec<f32>>, Vec<f64>) {
        let xs: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..6).map(|_| rng.next_f32()).collect())
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| cost(x)).collect();
        (xs, ys)
    }

    #[test]
    fn estimator_learns_a_smooth_cost_surface() {
        let mut rng = Rng::seed_from(1);
        let (xs, ys) = dataset(200, &mut rng);
        let (xt, yt) = dataset(50, &mut rng);
        let mut est = PerfEstimator::new(6, &mut rng);
        let before = est.mse(&xt, &yt);
        est.fit(&xs, &ys, 60, &mut rng);
        let after = est.mse(&xt, &yt);
        assert!(
            after < before * 0.2,
            "MSE should drop: before {before}, after {after}"
        );
    }

    #[test]
    fn estimator_ranks_configs_correctly() {
        let mut rng = Rng::seed_from(2);
        let (xs, ys) = dataset(300, &mut rng);
        let mut est = PerfEstimator::new(6, &mut rng);
        est.fit(&xs, &ys, 80, &mut rng);
        // A clearly-cheap point vs a clearly-expensive point.
        let cheap = vec![0.0, 0.0, 0.5, 0.0, 0.0, 0.0];
        let pricey = vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        assert!(est.predict(&cheap) < est.predict(&pricey));
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn wrong_dimension_panics() {
        let mut rng = Rng::seed_from(3);
        let mut est = PerfEstimator::new(6, &mut rng);
        est.predict(&[0.0; 4]);
    }
}
