//! Genetic-Algorithm configuration explorer.
//!
//! "Compared with the simulated annealing in TVM, our explorer model
//! supports better parallelism because it allows the initialization of an
//! arbitrary number of chromosomes to start the search" (§5.5).

use std::collections::HashMap;

use patdnn_tensor::rng::Rng;

use super::space::{ConfigSpace, TuningConfig};

/// Genetic-algorithm hyperparameters.
#[derive(Debug, Clone)]
pub struct GaConfig {
    /// Chromosomes per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Number of best chromosomes copied unchanged to the next
    /// generation.
    pub elitism: usize,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 24,
            generations: 12,
            mutation_rate: 0.15,
            tournament: 3,
            elitism: 2,
        }
    }
}

/// Result of one GA exploration.
#[derive(Debug, Clone)]
pub struct GaOutcome {
    /// The best configuration found.
    pub best: TuningConfig,
    /// Its cost.
    pub best_cost: f64,
    /// Best cost per generation (non-increasing).
    pub history: Vec<f64>,
    /// Number of distinct configurations evaluated.
    pub evaluations: usize,
}

/// The explorer itself.
#[derive(Debug, Clone, Default)]
pub struct GaExplorer {
    cfg: GaConfig,
}

impl GaExplorer {
    /// Creates an explorer.
    pub fn new(cfg: GaConfig) -> Self {
        GaExplorer { cfg }
    }

    /// Minimizes `eval` over the space. Costs are memoized, so `eval` is
    /// called once per distinct configuration.
    pub fn optimize(
        &self,
        space: &ConfigSpace,
        mut eval: impl FnMut(&TuningConfig) -> f64,
        rng: &mut Rng,
    ) -> GaOutcome {
        let dims = space.dims();
        let mut cache: HashMap<Vec<usize>, f64> = HashMap::new();
        let mut cost_of = |genes: &Vec<usize>, space: &ConfigSpace| -> f64 {
            if let Some(&c) = cache.get(genes) {
                return c;
            }
            let c = eval(&space.decode(genes));
            cache.insert(genes.clone(), c);
            c
        };

        let mut population: Vec<Vec<usize>> = (0..self.cfg.population)
            .map(|_| space.random_genes(rng))
            .collect();
        let mut history = Vec::with_capacity(self.cfg.generations);

        for _gen in 0..self.cfg.generations {
            let mut scored: Vec<(Vec<usize>, f64)> = population
                .iter()
                .map(|g| (g.clone(), cost_of(g, space)))
                .collect();
            scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
            history.push(scored[0].1);

            let mut next: Vec<Vec<usize>> = scored
                .iter()
                .take(self.cfg.elitism)
                .map(|(g, _)| g.clone())
                .collect();
            while next.len() < self.cfg.population {
                let parent_a = self.tournament_pick(&scored, rng);
                let parent_b = self.tournament_pick(&scored, rng);
                let mut child = crossover(parent_a, parent_b, rng);
                mutate(&mut child, &dims, self.cfg.mutation_rate, rng);
                next.push(child);
            }
            population = next;
        }

        let (best_genes, best_cost) = population
            .iter()
            .map(|g| (g.clone(), cost_of(g, space)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
            .expect("population non-empty");
        // History might not include the final generation's improvement.
        if history.last().copied().unwrap_or(f64::INFINITY) > best_cost {
            history.push(best_cost);
        }
        GaOutcome {
            best: space.decode(&best_genes),
            best_cost,
            history,
            evaluations: cache.len(),
        }
    }

    fn tournament_pick<'p>(
        &self,
        scored: &'p [(Vec<usize>, f64)],
        rng: &mut Rng,
    ) -> &'p Vec<usize> {
        let mut best: Option<&(Vec<usize>, f64)> = None;
        for _ in 0..self.cfg.tournament.max(1) {
            let cand = &scored[rng.below(scored.len())];
            if best.is_none_or(|b| cand.1 < b.1) {
                best = Some(cand);
            }
        }
        &best.expect("tournament non-empty").0
    }
}

fn crossover(a: &[usize], b: &[usize], rng: &mut Rng) -> Vec<usize> {
    a.iter()
        .zip(b)
        .map(|(&ga, &gb)| if rng.chance(0.5) { ga } else { gb })
        .collect()
}

fn mutate(genes: &mut [usize], dims: &[usize], rate: f64, rng: &mut Rng) {
    for (g, &d) in genes.iter_mut().zip(dims) {
        if rng.chance(rate) {
            *g = rng.below(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic cost with a unique optimum at a known configuration.
    fn synthetic_cost(cfg: &TuningConfig) -> f64 {
        let mut cost = 10.0;
        // Optimum: CoHwCi, blocked, tile_oc 32, tile_hw 16, unroll 4/4.
        if cfg.permute != super::super::space::LoopPermutation::CoHwCi {
            cost += 3.0;
        }
        if !cfg.blocked {
            cost += 2.0;
        }
        cost += ((cfg.tile_oc as f64).log2() - 5.0).abs();
        cost += ((cfg.tile_hw as f64).log2() - 4.0).abs();
        cost += ((cfg.unroll_oc as f64).log2() - 2.0).abs();
        cost += ((cfg.unroll_w as f64).log2() - 2.0).abs();
        cost
    }

    #[test]
    fn ga_finds_the_optimum_on_a_smooth_landscape() {
        let space = ConfigSpace::standard();
        let explorer = GaExplorer::new(GaConfig {
            population: 30,
            generations: 20,
            ..GaConfig::default()
        });
        let mut rng = Rng::seed_from(42);
        let out = explorer.optimize(&space, synthetic_cost, &mut rng);
        assert!(
            (out.best_cost - 10.0).abs() < 1e-9,
            "best {:?} cost {}",
            out.best,
            out.best_cost
        );
        assert_eq!(out.best.tile_oc, 32);
        assert_eq!(out.best.unroll_w, 4);
    }

    #[test]
    fn history_is_monotone_non_increasing() {
        let space = ConfigSpace::standard();
        let explorer = GaExplorer::new(GaConfig::default());
        let mut rng = Rng::seed_from(7);
        let out = explorer.optimize(&space, synthetic_cost, &mut rng);
        for pair in out.history.windows(2) {
            assert!(
                pair[0] >= pair[1] - 1e-12,
                "history regressed: {:?}",
                out.history
            );
        }
    }

    #[test]
    fn memoization_bounds_evaluations() {
        let space = ConfigSpace::standard();
        let explorer = GaExplorer::new(GaConfig {
            population: 16,
            generations: 10,
            ..GaConfig::default()
        });
        let mut rng = Rng::seed_from(8);
        let mut calls = 0usize;
        let out = explorer.optimize(
            &space,
            |c| {
                calls += 1;
                synthetic_cost(c)
            },
            &mut rng,
        );
        assert_eq!(calls, out.evaluations);
        assert!(
            calls <= 16 * 11,
            "evaluations {calls} exceed population x generations"
        );
        assert!(calls < space.len(), "GA must not enumerate the whole space");
    }

    #[test]
    fn beats_random_search_with_equal_budget() {
        let space = ConfigSpace::standard();
        let mut rng = Rng::seed_from(9);
        let explorer = GaExplorer::new(GaConfig {
            population: 20,
            generations: 8,
            ..GaConfig::default()
        });
        let out = explorer.optimize(&space, synthetic_cost, &mut rng);
        // Random search with the same evaluation budget.
        let mut best_random = f64::INFINITY;
        for _ in 0..out.evaluations {
            let genes = space.random_genes(&mut rng);
            best_random = best_random.min(synthetic_cost(&space.decode(&genes)));
        }
        assert!(
            out.best_cost <= best_random,
            "GA {} vs random {best_random}",
            out.best_cost
        );
    }
}
