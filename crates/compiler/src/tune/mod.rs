//! Parameter auto-tuning (§5.5).
//!
//! "It consists of two parts: first, an explorer model based on Genetic
//! Algorithm to generate the configuration exploration space; and second,
//! a performance estimation model created from our historical data to
//! predict the possible best configuration and performance for a given
//! hardware."

pub mod estimator;
pub mod ga;
pub mod space;
pub mod tuner;

pub use estimator::PerfEstimator;
pub use ga::{GaConfig, GaExplorer};
pub use space::{ConfigSpace, ConvAlgo, LoopPermutation, TuningConfig};
pub use tuner::{AutoTuner, TuningResult};
