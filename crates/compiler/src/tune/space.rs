//! The tuning configuration space: loop permutations, blocking, tiling
//! and unrolling factors (the knobs of Figures 13 and 15), plus the
//! per-layer *algorithm* axis ([`ConvAlgo`]) the serving tuner selects
//! over — direct FKW traversal, im2col+GEMM, or Winograd `F(2×2,3×3)`.

use patdnn_tensor::rng::Rng;

/// Which convolution lowering executes a layer.
///
/// The tile/unroll knobs of [`TuningConfig`] parameterize a lowering;
/// this picks the lowering itself. `Direct` is the pattern-aware FKW
/// executor (the only sensible choice for heavily pruned layers, whose
/// stored-MAC count is far below dense); `Im2col` and `Winograd`
/// densify the layer and pay dense-cost arithmetic through the packed
/// SIMD micro-kernels, which can win on dense-ish layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConvAlgo {
    /// Pattern-aware direct convolution over FKW storage.
    #[default]
    Direct,
    /// Densified im2col lowering + register-tiled GEMM.
    Im2col,
    /// Winograd `F(2×2, 3×3)` (stride-1 3×3 layers only).
    Winograd,
}

impl ConvAlgo {
    /// Short label for reports and plan dumps.
    pub fn label(&self) -> &'static str {
        match self {
            ConvAlgo::Direct => "direct",
            ConvAlgo::Im2col => "im2col",
            ConvAlgo::Winograd => "winograd",
        }
    }

    /// All algorithms, in persistence-tag order.
    pub fn all() -> [ConvAlgo; 3] {
        [ConvAlgo::Direct, ConvAlgo::Im2col, ConvAlgo::Winograd]
    }
}

/// Computation loop order of a convolution layer.
///
/// The paper's Figure 15 sweeps `CoCiHW` and `CoHWCi` (output channel /
/// input channel / spatial orderings), each with and without blocking;
/// the LR example (Figure 8) selects `cohwci_b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopPermutation {
    /// Output channel, then input channel, then spatial (`CoCiHW`).
    CoCiHw,
    /// Output channel, then spatial, then input channel (`CoHWCi`).
    CoHwCi,
}

impl LoopPermutation {
    /// Label in the paper's notation, with `_b` appended when blocked.
    pub fn label(&self, blocked: bool) -> String {
        let base = match self {
            LoopPermutation::CoCiHw => "cocihw",
            LoopPermutation::CoHwCi => "cohwci",
        };
        if blocked {
            format!("{base}_b")
        } else {
            base.to_owned()
        }
    }

    /// All permutations.
    pub fn all() -> [LoopPermutation; 2] {
        [LoopPermutation::CoCiHw, LoopPermutation::CoHwCi]
    }
}

/// One point in the tuning space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TuningConfig {
    /// Loop order.
    pub permute: LoopPermutation,
    /// Whether loop tiling ("blocking") is applied.
    pub blocked: bool,
    /// Output-channel tile size.
    pub tile_oc: usize,
    /// Spatial tile size (applied to output rows).
    pub tile_hw: usize,
    /// Output-channel unroll factor (enables filter-level LRE).
    pub unroll_oc: usize,
    /// Output-width unroll factor (enables kernel-level LRE).
    pub unroll_w: usize,
}

impl TuningConfig {
    /// A sensible untuned default (what the executor uses before
    /// auto-tuning runs).
    pub fn baseline() -> Self {
        TuningConfig {
            permute: LoopPermutation::CoCiHw,
            blocked: false,
            tile_oc: 16,
            tile_hw: 16,
            unroll_oc: 1,
            unroll_w: 1,
        }
    }

    /// The paper's LR-example-style tuned configuration.
    pub fn tuned_default() -> Self {
        TuningConfig {
            permute: LoopPermutation::CoHwCi,
            blocked: true,
            tile_oc: 16,
            tile_hw: 32,
            unroll_oc: 4,
            unroll_w: 8,
        }
    }

    /// Normalized feature vector for the MLP performance estimator.
    pub fn features(&self) -> Vec<f32> {
        vec![
            match self.permute {
                LoopPermutation::CoCiHw => 0.0,
                LoopPermutation::CoHwCi => 1.0,
            },
            if self.blocked { 1.0 } else { 0.0 },
            (self.tile_oc as f32).log2() / 8.0,
            (self.tile_hw as f32).log2() / 8.0,
            (self.unroll_oc as f32).log2() / 4.0,
            (self.unroll_w as f32).log2() / 4.0,
        ]
    }
}

/// The discrete choices per tuning dimension.
#[derive(Debug, Clone)]
pub struct ConfigSpace {
    permutes: Vec<LoopPermutation>,
    blocked: Vec<bool>,
    tile_oc: Vec<usize>,
    tile_hw: Vec<usize>,
    unroll_oc: Vec<usize>,
    unroll_w: Vec<usize>,
}

impl ConfigSpace {
    /// The standard space used throughout the reproduction.
    pub fn standard() -> Self {
        ConfigSpace {
            permutes: LoopPermutation::all().to_vec(),
            blocked: vec![false, true],
            tile_oc: vec![8, 16, 32, 64],
            tile_hw: vec![8, 16, 32],
            unroll_oc: vec![1, 2, 4, 8],
            unroll_w: vec![1, 2, 4, 8],
        }
    }

    /// Cardinality of each gene dimension, for the GA encoding.
    pub fn dims(&self) -> Vec<usize> {
        vec![
            self.permutes.len(),
            self.blocked.len(),
            self.tile_oc.len(),
            self.tile_hw.len(),
            self.unroll_oc.len(),
            self.unroll_w.len(),
        ]
    }

    /// Total number of configurations.
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// Returns `true` if the space is degenerate (never for `standard`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes a GA gene vector into a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `genes` has the wrong arity or an out-of-range gene.
    pub fn decode(&self, genes: &[usize]) -> TuningConfig {
        assert_eq!(genes.len(), 6, "six tuning genes expected");
        TuningConfig {
            permute: self.permutes[genes[0]],
            blocked: self.blocked[genes[1]],
            tile_oc: self.tile_oc[genes[2]],
            tile_hw: self.tile_hw[genes[3]],
            unroll_oc: self.unroll_oc[genes[4]],
            unroll_w: self.unroll_w[genes[5]],
        }
    }

    /// Uniformly samples a gene vector.
    pub fn random_genes(&self, rng: &mut Rng) -> Vec<usize> {
        self.dims().iter().map(|&d| rng.below(d)).collect()
    }

    /// Enumerates every configuration in the space.
    pub fn enumerate(&self) -> Vec<TuningConfig> {
        let dims = self.dims();
        let mut out = Vec::with_capacity(self.len());
        let mut genes = vec![0usize; dims.len()];
        loop {
            out.push(self.decode(&genes));
            // Odometer increment.
            let mut i = dims.len();
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                genes[i] += 1;
                if genes[i] < dims[i] {
                    break;
                }
                genes[i] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_space_size() {
        let space = ConfigSpace::standard();
        assert_eq!(space.len(), 2 * 2 * 4 * 3 * 4 * 4);
        assert_eq!(space.enumerate().len(), space.len());
    }

    #[test]
    fn enumerate_has_no_duplicates() {
        let space = ConfigSpace::standard();
        let mut all = space.enumerate();
        let before = all.len();
        all.sort_by_key(|c| format!("{c:?}"));
        all.dedup();
        assert_eq!(all.len(), before);
    }

    #[test]
    fn decode_random_genes_is_total() {
        let space = ConfigSpace::standard();
        let mut rng = Rng::seed_from(1);
        for _ in 0..100 {
            let genes = space.random_genes(&mut rng);
            let cfg = space.decode(&genes);
            assert!(cfg.tile_oc >= 8 && cfg.tile_oc <= 64);
        }
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(LoopPermutation::CoHwCi.label(true), "cohwci_b");
        assert_eq!(LoopPermutation::CoCiHw.label(false), "cocihw");
    }

    #[test]
    fn algo_labels_are_distinct_and_direct_is_default() {
        assert_eq!(ConvAlgo::default(), ConvAlgo::Direct);
        let labels: Vec<&str> = ConvAlgo::all().iter().map(|a| a.label()).collect();
        assert_eq!(labels, vec!["direct", "im2col", "winograd"]);
    }

    #[test]
    fn features_are_bounded() {
        for cfg in ConfigSpace::standard().enumerate() {
            for f in cfg.features() {
                assert!(
                    (0.0..=1.0).contains(&f),
                    "feature {f} out of range for {cfg:?}"
                );
            }
        }
    }
}
