//! Computational-graph IR.
//!
//! PatDNN "converts DNN models into computational graphs and applies
//! multiple graph-based optimizations" (§5) before the layerwise work.
//! The IR here is deliberately small: enough to express the conv / BN /
//! activation / pool / FC chains of the paper's models and to run the
//! fusion and elimination passes of [`crate::passes`].

use patdnn_tensor::Tensor;

/// A graph operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Graph input with the given NCHW shape.
    Input {
        /// Activation shape.
        shape: Vec<usize>,
    },
    /// Convolution; weights optional (specs without materialized weights
    /// still flow through the passes).
    Conv {
        /// Output channels.
        out_c: usize,
        /// Input channels.
        in_c: usize,
        /// Kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
        /// Materialized weights (OIHW), if any.
        weights: Option<Tensor>,
        /// Bias, if any.
        bias: Option<Vec<f32>>,
        /// Whether a following ReLU has been fused into this conv.
        fused_relu: bool,
    },
    /// Batch normalization folded form: `y = scale * x + shift` per
    /// channel.
    BatchNorm {
        /// Per-channel scale.
        scale: Vec<f32>,
        /// Per-channel shift.
        shift: Vec<f32>,
    },
    /// ReLU activation.
    Relu,
    /// Identity (arises from eliminated ops before DCE).
    Identity,
    /// Max pooling.
    MaxPool {
        /// Window size.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling.
    GlobalAvgPool,
    /// Flatten to `[batch, features]`.
    Flatten,
    /// Fully-connected layer.
    Fc {
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
        /// Materialized weights (`[out_f, in_f]`), if any — specs without
        /// weights still flow through the passes; executable plans
        /// (patdnn-serve) require them.
        weights: Option<Tensor>,
        /// Bias, if any.
        bias: Option<Vec<f32>>,
    },
    /// Elementwise addition of two inputs (residual join).
    Add {
        /// Whether a following ReLU has been fused into this join.
        fused_relu: bool,
    },
}

impl Op {
    /// Short kind label for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Op::Input { .. } => "input",
            Op::Conv { .. } => "conv",
            Op::BatchNorm { .. } => "batchnorm",
            Op::Relu => "relu",
            Op::Identity => "identity",
            Op::MaxPool { .. } => "maxpool",
            Op::GlobalAvgPool => "gap",
            Op::Flatten => "flatten",
            Op::Fc { .. } => "fc",
            Op::Add { .. } => "add",
        }
    }
}

/// A node: an op plus its input edges.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Node name (layer name or synthesized).
    pub name: String,
    /// The operation.
    pub op: Op,
    /// Indices of producer nodes.
    pub inputs: Vec<usize>,
}

/// A directed acyclic computational graph with one output.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    /// Nodes in topological order (inputs before users).
    pub nodes: Vec<Node>,
    /// Index of the output node.
    pub output: usize,
}

impl Graph {
    /// The absent-shortcut argument for [`Graph::residual_block`]: an
    /// identity skip connection.
    pub const IDENTITY_SHORTCUT: Option<fn(&mut Graph, usize) -> usize> = None;

    /// Creates a graph containing a single input node.
    pub fn with_input(shape: &[usize]) -> Self {
        Graph {
            nodes: vec![Node {
                name: "input".into(),
                op: Op::Input {
                    shape: shape.to_vec(),
                },
                inputs: vec![],
            }],
            output: 0,
        }
    }

    /// Appends a node consuming `inputs`; returns its index and marks it
    /// as the graph output.
    pub fn push(&mut self, name: &str, op: Op, inputs: &[usize]) -> usize {
        for &i in inputs {
            assert!(i < self.nodes.len(), "input edge {i} out of range");
        }
        self.nodes.push(Node {
            name: name.to_owned(),
            op,
            inputs: inputs.to_vec(),
        });
        self.output = self.nodes.len() - 1;
        self.output
    }

    /// Number of nodes of each kind, for pass reports.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.nodes.iter().filter(|n| n.op.kind() == kind).count()
    }

    /// Users of node `id`.
    pub fn users(&self, id: usize) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.inputs.contains(&id))
            .map(|(i, _)| i)
            .collect()
    }

    /// Checks topological validity (every edge points backwards).
    pub fn is_topologically_sorted(&self) -> bool {
        self.nodes
            .iter()
            .enumerate()
            .all(|(i, n)| n.inputs.iter().all(|&j| j < i))
    }

    /// Appends a residual block rooted at `input`: `main` (and `shortcut`,
    /// when present) are builder closures that receive the graph and the
    /// block's input node and return their branch's output node; an
    /// [`Op::Add`] named `name` joins the two branches (the shortcut
    /// defaults to the identity skip, i.e. the block input itself).
    /// Returns the join node's index.
    ///
    /// Pass `Graph::IDENTITY_SHORTCUT` for an identity skip.
    pub fn residual_block<M, S>(
        &mut self,
        name: &str,
        input: usize,
        main: M,
        shortcut: Option<S>,
    ) -> usize
    where
        M: FnOnce(&mut Graph, usize) -> usize,
        S: FnOnce(&mut Graph, usize) -> usize,
    {
        let main_out = main(self, input);
        let short_out = match shortcut {
            Some(s) => s(self, input),
            None => input,
        };
        self.push(name, Op::Add { fused_relu: false }, &[main_out, short_out])
    }

    /// Builds a conv(+BN)(+ReLU) chain graph for testing and
    /// spec-driven compilation: each tuple is `(name, out_c, in_c,
    /// kernel, stride, pad)`.
    pub fn conv_chain(
        input_shape: &[usize],
        convs: &[(&str, usize, usize, usize, usize, usize)],
        with_bn: bool,
        with_relu: bool,
    ) -> Graph {
        let mut g = Graph::with_input(input_shape);
        let mut prev = 0usize;
        for &(name, out_c, in_c, kernel, stride, pad) in convs {
            let conv = g.push(
                name,
                Op::Conv {
                    out_c,
                    in_c,
                    kernel,
                    stride,
                    pad,
                    weights: None,
                    bias: None,
                    fused_relu: false,
                },
                &[prev],
            );
            prev = conv;
            if with_bn {
                prev = g.push(
                    &format!("{name}_bn"),
                    Op::BatchNorm {
                        scale: vec![1.0; out_c],
                        shift: vec![0.0; out_c],
                    },
                    &[prev],
                );
            }
            if with_relu {
                prev = g.push(&format!("{name}_relu"), Op::Relu, &[prev]);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_construction_is_topological() {
        let g = Graph::conv_chain(
            &[1, 3, 32, 32],
            &[("c1", 16, 3, 3, 1, 1), ("c2", 32, 16, 3, 1, 1)],
            true,
            true,
        );
        assert!(g.is_topologically_sorted());
        assert_eq!(g.count_kind("conv"), 2);
        assert_eq!(g.count_kind("batchnorm"), 2);
        assert_eq!(g.count_kind("relu"), 2);
        assert_eq!(g.output, g.nodes.len() - 1);
    }

    #[test]
    fn users_finds_consumers() {
        let g = Graph::conv_chain(&[1, 3, 8, 8], &[("c1", 4, 3, 3, 1, 1)], false, true);
        // Node 1 is the conv; its only user is the relu (node 2).
        assert_eq!(g.users(1), vec![2]);
        assert_eq!(g.users(2), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn forward_edges_rejected() {
        let mut g = Graph::with_input(&[1, 1, 4, 4]);
        g.push("bad", Op::Relu, &[5]);
    }

    #[test]
    fn residual_block_joins_branches_with_add() {
        let mut g = Graph::with_input(&[1, 4, 8, 8]);
        let join = g.residual_block(
            "block1",
            0,
            |g, x| {
                let c = g.push(
                    "c1",
                    Op::Conv {
                        out_c: 4,
                        in_c: 4,
                        kernel: 3,
                        stride: 1,
                        pad: 1,
                        weights: None,
                        bias: None,
                        fused_relu: false,
                    },
                    &[x],
                );
                g.push("r1", Op::Relu, &[c])
            },
            Graph::IDENTITY_SHORTCUT,
        );
        assert!(g.is_topologically_sorted());
        assert_eq!(g.nodes[join].op.kind(), "add");
        // Identity skip: the join reads the branch output and the input.
        assert_eq!(g.nodes[join].inputs, vec![2, 0]);
        assert_eq!(g.output, join);
        // The block input now has two users: the main conv and the join.
        assert_eq!(g.users(0).len(), 2);
    }

    #[test]
    fn projected_residual_block_builds_shortcut_branch() {
        let mut g = Graph::with_input(&[1, 4, 8, 8]);
        let conv = |out_c, in_c, kernel, stride, pad| Op::Conv {
            out_c,
            in_c,
            kernel,
            stride,
            pad,
            weights: None,
            bias: None,
            fused_relu: false,
        };
        let join = g.residual_block(
            "block2",
            0,
            |g, x| g.push("main", conv(8, 4, 3, 2, 1), &[x]),
            Some(|g: &mut Graph, x| g.push("proj", conv(8, 4, 1, 2, 0), &[x])),
        );
        assert_eq!(g.nodes[join].inputs.len(), 2);
        assert_eq!(g.nodes[g.nodes[join].inputs[1]].name, "proj");
    }
}
