//! Filter-Kernel Reorder (FKR) — §5.2, Figure 9.
//!
//! "FKR is composed of two steps: filter reorder and kernel reorder. The
//! filter reorder organizes similar filters next to each other and the
//! kernel reorder groups kernels with identical patterns in each filter
//! together. [...] filter similarity is decided by two factors: first,
//! the number of non-empty kernels in each filter; and second, for
//! filters with the same length, the number of kernels at identical
//! positions with identical pattern IDs when the kernels in each filter
//! are ordered according to these IDs."

use std::ops::Range;

use patdnn_core::project::{KernelStatus, LayerPruning};

/// The result of filter-kernel reorder on one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterOrder {
    /// `order[r]` is the original filter index stored at row `r`.
    pub order: Vec<usize>,
    /// Contiguous ranges of rows whose filters share the same length;
    /// these become CPU thread chunks / GPU thread blocks.
    pub groups: Vec<Range<usize>>,
    /// Per original filter: its kept kernels as `(input channel, status)`
    /// sorted by pattern id then input channel (the kernel reorder).
    pub kernel_order: Vec<Vec<(usize, KernelStatus)>>,
}

impl FilterOrder {
    /// The identity order for `n` filters (used for un-reordered
    /// baselines), with every filter in its own group and kernels in
    /// input-channel order.
    pub fn identity(lp: &LayerPruning) -> Self {
        let order: Vec<usize> = (0..lp.out_c).collect();
        let kernel_order = (0..lp.out_c)
            .map(|oc| {
                (0..lp.in_c)
                    .filter_map(|ic| {
                        let st = lp.kernel_at(oc, ic);
                        st.is_kept().then_some((ic, st))
                    })
                    .collect()
            })
            .collect();
        FilterOrder {
            order,
            groups: std::iter::once(0..lp.out_c).collect(),
            kernel_order,
        }
    }

    /// Filter lengths in storage (reordered) order.
    pub fn lengths_in_order(&self, lp: &LayerPruning) -> Vec<usize> {
        let lengths = lp.filter_lengths();
        self.order.iter().map(|&f| lengths[f]).collect()
    }

    /// Maximum load imbalance across groups if each group is executed by
    /// one thread per filter: `max length - min length` within the worst
    /// group (0 = perfectly balanced, which FKR guarantees).
    pub fn group_imbalance(&self, lp: &LayerPruning) -> usize {
        let lengths = lp.filter_lengths();
        self.groups
            .iter()
            .map(|g| {
                let ls: Vec<usize> = self.order[g.clone()].iter().map(|&f| lengths[f]).collect();
                match (ls.iter().max(), ls.iter().min()) {
                    (Some(max), Some(min)) => max - min,
                    _ => 0,
                }
            })
            .max()
            .unwrap_or(0)
    }
}

fn pattern_key(status: KernelStatus) -> usize {
    match status {
        KernelStatus::Pattern(id) => id,
        KernelStatus::Dense => usize::MAX - 1,
        KernelStatus::Pruned => usize::MAX,
    }
}

/// Performs filter-kernel reorder on one layer's pruning record.
///
/// Filters are grouped by descending length (longest filters first, so
/// heavy thread blocks launch first); within a length group filters are
/// ordered lexicographically by their kernel-pattern signature, putting
/// maximally similar filters adjacent. Kernels inside each filter are
/// sorted by pattern id, then input channel.
pub fn filter_kernel_reorder(lp: &LayerPruning) -> FilterOrder {
    // Kernel reorder: per filter, kept kernels sorted by (pattern, channel).
    let mut kernel_order: Vec<Vec<(usize, KernelStatus)>> = Vec::with_capacity(lp.out_c);
    for oc in 0..lp.out_c {
        let mut kept: Vec<(usize, KernelStatus)> = (0..lp.in_c)
            .filter_map(|ic| {
                let st = lp.kernel_at(oc, ic);
                st.is_kept().then_some((ic, st))
            })
            .collect();
        kept.sort_by_key(|&(ic, st)| (pattern_key(st), ic));
        kernel_order.push(kept);
    }

    // Filter signatures: ordered pattern-id sequence.
    let signatures: Vec<Vec<usize>> = kernel_order
        .iter()
        .map(|ks| ks.iter().map(|&(_, st)| pattern_key(st)).collect())
        .collect();

    let mut order: Vec<usize> = (0..lp.out_c).collect();
    order.sort_by(|&a, &b| {
        signatures[b]
            .len()
            .cmp(&signatures[a].len())
            .then_with(|| signatures[a].cmp(&signatures[b]))
            .then(a.cmp(&b))
    });

    // Group ranges by equal length.
    let mut groups = Vec::new();
    let mut start = 0;
    while start < order.len() {
        let len = signatures[order[start]].len();
        let mut end = start + 1;
        while end < order.len() && signatures[order[end]].len() == len {
            end += 1;
        }
        groups.push(start..end);
        start = end;
    }

    FilterOrder {
        order,
        groups,
        kernel_order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patdnn_core::pattern_set::PatternSet;
    use patdnn_core::project::prune_layer;
    use patdnn_tensor::rng::Rng;
    use patdnn_tensor::Tensor;

    fn pruned_layer(oc: usize, ic: usize, alpha: usize, seed: u64) -> LayerPruning {
        let mut rng = Rng::seed_from(seed);
        let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        prune_layer("test", &mut w, &set, alpha)
    }

    #[test]
    fn order_is_a_permutation() {
        let lp = pruned_layer(16, 8, 40, 1);
        let fo = filter_kernel_reorder(&lp);
        let mut sorted = fo.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn groups_are_balanced_and_sorted_by_length() {
        let lp = pruned_layer(32, 8, 100, 2);
        let fo = filter_kernel_reorder(&lp);
        assert_eq!(fo.group_imbalance(&lp), 0, "groups share one length");
        let lengths = fo.lengths_in_order(&lp);
        // Lengths are non-increasing across the storage order.
        for pair in lengths.windows(2) {
            assert!(pair[0] >= pair[1], "lengths {lengths:?} not sorted");
        }
        // Groups tile the whole filter range.
        let covered: usize = fo.groups.iter().map(|g| g.len()).sum();
        assert_eq!(covered, 32);
    }

    #[test]
    fn kernels_sorted_by_pattern_then_channel() {
        let lp = pruned_layer(8, 16, 64, 3);
        let fo = filter_kernel_reorder(&lp);
        for ks in &fo.kernel_order {
            for pair in ks.windows(2) {
                let ka = (pattern_key(pair[0].1), pair[0].0);
                let kb = (pattern_key(pair[1].1), pair[1].0);
                assert!(ka <= kb, "kernel order violated: {ka:?} > {kb:?}");
            }
        }
    }

    #[test]
    fn identity_order_preserves_channel_order() {
        let lp = pruned_layer(4, 8, 16, 4);
        let fo = FilterOrder::identity(&lp);
        assert_eq!(fo.order, vec![0, 1, 2, 3]);
        for ks in &fo.kernel_order {
            for pair in ks.windows(2) {
                assert!(pair[0].0 < pair[1].0);
            }
        }
    }

    #[test]
    fn similar_filters_become_adjacent() {
        // Hand-build a layer where filters 0 and 2 share the exact same
        // pattern signature and filter 1 differs; after reorder, 0 and 2
        // must be adjacent.
        let lp = LayerPruning {
            name: "t".into(),
            out_c: 3,
            in_c: 2,
            kernel: 3,
            kernels: vec![
                KernelStatus::Pattern(1),
                KernelStatus::Pattern(2),
                KernelStatus::Pattern(3),
                KernelStatus::Pattern(4),
                KernelStatus::Pattern(1),
                KernelStatus::Pattern(2),
            ],
        };
        let fo = filter_kernel_reorder(&lp);
        let pos0 = fo.order.iter().position(|&f| f == 0).unwrap();
        let pos2 = fo.order.iter().position(|&f| f == 2).unwrap();
        assert_eq!(pos0.abs_diff(pos2), 1, "order {:?}", fo.order);
    }

    #[test]
    fn reorder_reduces_imbalance_vs_identity() {
        // A ragged layer: many different lengths. Identity keeps one big
        // group (imbalance > 0); FKR splits into equal-length groups.
        let lp = pruned_layer(24, 12, 90, 5);
        let identity = FilterOrder::identity(&lp);
        let reordered = filter_kernel_reorder(&lp);
        assert!(identity.group_imbalance(&lp) > 0, "test needs ragged input");
        assert_eq!(reordered.group_imbalance(&lp), 0);
    }
}
