//! Property-based tests of the pruning invariants (DESIGN.md §6).
//!
//! Exercised over a deterministic sweep of seeds using the workspace's
//! own [`Rng`]; case parameters are derived from each seed, covering the
//! same ranges the original proptest strategies did.

use patdnn_core::pattern::Pattern;
use patdnn_core::pattern_set::PatternSet;
use patdnn_core::project::{
    alpha_for_rate, project_layer_connectivity, project_layer_patterns, prune_layer,
    prune_layer_connectivity_only, KernelStatus,
};
use patdnn_tensor::rng::Rng;
use patdnn_tensor::Tensor;

/// Natural pattern: 4 entries, includes centre, maximal retained L2
/// among all 56 candidates.
#[test]
fn natural_pattern_is_l2_optimal() {
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from(seed);
        let mut kernel = [0.0f32; 9];
        for v in &mut kernel {
            *v = rng.uniform(-1.0, 1.0);
        }
        let natural = Pattern::natural_of(&kernel);
        assert_eq!(natural.entries(), 4, "seed {seed}");
        assert!(natural.includes_center(), "seed {seed}");
        let e = natural.kept_energy(&kernel);
        for p in Pattern::all_natural() {
            assert!(p.kept_energy(&kernel) <= e + 1e-6, "seed {seed}");
        }
    }
}

/// Pattern projection leaves exactly `entries` non-zeros, all on the
/// chosen pattern's positions, and the choice maximizes energy.
#[test]
fn pattern_projection_invariants() {
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from(seed);
        let (oc, ic) = (1 + rng.below(5), 1 + rng.below(5));
        let k = 2 + rng.below(7);
        let set = PatternSet::standard(k);
        let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let original = w.clone();
        let ids = project_layer_patterns(&mut w, &set);
        for (i, kernel) in w.data().chunks_exact(9).enumerate() {
            let p = set.get(ids[i]);
            for (j, &v) in kernel.iter().enumerate() {
                if !p.contains(j / 3, j % 3) {
                    assert_eq!(v, 0.0, "seed {seed}");
                } else {
                    assert_eq!(v, original.data()[i * 9 + j], "seed {seed}");
                }
            }
            // Energy-optimal among the set.
            let orig_kernel = &original.data()[i * 9..(i + 1) * 9];
            let chosen = p.kept_energy(orig_kernel);
            for (_, q) in set.iter() {
                assert!(q.kept_energy(orig_kernel) <= chosen + 1e-5, "seed {seed}");
            }
        }
    }
}

/// Connectivity projection keeps exactly alpha kernels — the ones
/// with the largest L2 norms.
#[test]
fn connectivity_projection_invariants() {
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from(seed);
        let (oc, ic) = (1 + rng.below(5), 1 + rng.below(5));
        let rate = rng.uniform(1.0, 8.0);
        let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let original = w.clone();
        let alpha = alpha_for_rate(oc * ic, rate);
        let keep = project_layer_connectivity(&mut w, alpha);
        assert_eq!(keep.iter().filter(|&&x| x).count(), alpha, "seed {seed}");
        // Minimum kept norm >= maximum dropped norm.
        let norms: Vec<f32> = original
            .data()
            .chunks_exact(9)
            .map(|k| k.iter().map(|&x| x * x).sum())
            .collect();
        let min_kept = keep
            .iter()
            .zip(&norms)
            .filter(|(&k, _)| k)
            .map(|(_, &n)| n)
            .fold(f32::INFINITY, f32::min);
        let max_dropped = keep
            .iter()
            .zip(&norms)
            .filter(|(&k, _)| !k)
            .map(|(_, &n)| n)
            .fold(0.0f32, f32::max);
        assert!(min_kept >= max_dropped - 1e-6, "seed {seed}");
    }
}

/// Joint pruning satisfies both constraints simultaneously and its
/// record is consistent with the weight tensor.
#[test]
fn joint_pruning_satisfies_both_constraints() {
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from(seed);
        let (oc, ic) = (2 + rng.below(6), 2 + rng.below(6));
        let rate = rng.uniform(1.5, 6.0);
        let set = PatternSet::standard(8);
        let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let alpha = alpha_for_rate(oc * ic, rate);
        let lp = prune_layer("p", &mut w, &set, alpha);
        assert_eq!(lp.kept_kernels(), alpha, "seed {seed}");
        assert_eq!(w.count_nonzero(), lp.nonzero_weights(&set), "seed {seed}");
        for (i, kernel) in w.data().chunks_exact(9).enumerate() {
            match lp.kernels[i] {
                KernelStatus::Pruned => {
                    assert!(kernel.iter().all(|&x| x == 0.0), "seed {seed}");
                }
                KernelStatus::Pattern(id) => {
                    let p = set.get(id);
                    for (j, &v) in kernel.iter().enumerate() {
                        assert!(v == 0.0 || p.contains(j / 3, j % 3), "seed {seed}");
                    }
                }
                KernelStatus::Dense => unreachable!("3x3 never Dense"),
            }
        }
    }
}

/// Connectivity-only pruning never touches the inside of surviving
/// kernels.
#[test]
fn connectivity_only_keeps_kernels_dense() {
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from(seed);
        let (oc, ic) = (2 + rng.below(4), 2 + rng.below(4));
        let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let original = w.clone();
        let alpha = (oc * ic).div_ceil(2);
        let lp = prune_layer_connectivity_only("c", &mut w, alpha);
        for (i, st) in lp.kernels.iter().enumerate() {
            let kernel = &w.data()[i * 9..(i + 1) * 9];
            match st {
                KernelStatus::Dense => {
                    assert_eq!(kernel, &original.data()[i * 9..(i + 1) * 9], "seed {seed}");
                }
                KernelStatus::Pruned => assert!(kernel.iter().all(|&x| x == 0.0), "seed {seed}"),
                KernelStatus::Pattern(_) => unreachable!("no patterns here"),
            }
        }
    }
}

/// Projections are idempotent.
#[test]
fn projections_are_idempotent() {
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from(seed);
        let (oc, ic) = (1 + rng.below(4), 1 + rng.below(4));
        let set = PatternSet::standard(6);
        let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let alpha = (oc * ic).div_ceil(3);
        prune_layer("p", &mut w, &set, alpha);
        let snapshot = w.clone();
        let ids1 = project_layer_patterns(&mut w, &set);
        assert_eq!(&w, &snapshot, "seed {seed}");
        let keep = project_layer_connectivity(&mut w, alpha);
        assert_eq!(&w, &snapshot, "seed {seed}");
        assert_eq!(keep.iter().filter(|&&x| x).count(), alpha, "seed {seed}");
        let ids2 = project_layer_patterns(&mut w, &set);
        assert_eq!(ids1, ids2, "seed {seed}");
    }
}
