//! # patdnn-core
//!
//! The algorithm side of PatDNN (ASPLOS 2020): **pattern-based weight
//! pruning** via an extended ADMM solution framework.
//!
//! The paper's training stage (its §4) has two steps, both implemented
//! here:
//!
//! 1. **Pattern set design** ([`pattern`], [`pattern_set`]) — harvest the
//!    *natural pattern* (centre weight + three largest-magnitude
//!    neighbours) of every 3×3 kernel in a pre-trained model, then keep
//!    the top-k most frequent patterns as the candidate set (§4.1).
//! 2. **Kernel-pattern + connectivity pruning** ([`project`], [`admm`]) —
//!    an ADMM iteration alternating an SGD/Adam subproblem with Euclidean
//!    projections onto the pattern and connectivity constraint sets,
//!    followed by masked retraining (§4.2).
//!
//! Baseline pruning schemes the paper compares against (magnitude
//! non-structured, ADMM non-structured, filter and channel structured
//! pruning) live in [`prune`]; sparsity/compression accounting in
//! [`sparsity`].
//!
//! # Examples
//!
//! ```
//! use patdnn_core::pattern::Pattern;
//!
//! let mut kernel = [0.9, 0.1, 0.0, 0.7, 0.8, 0.0, 0.0, 0.0, 0.6];
//! let natural = Pattern::natural_of(&kernel);
//! assert_eq!(natural.entries(), 4);
//! assert!(natural.contains(1, 1)); // centre always kept
//! natural.apply(&mut kernel);
//! assert_eq!(kernel.iter().filter(|&&w| w != 0.0).count(), 4);
//! ```

pub mod admm;
pub mod pattern;
pub mod pattern_set;
pub mod project;
pub mod prune;
pub mod sparsity;

pub use admm::{AdmmConfig, AdmmPruner, AdmmReport};
pub use pattern::Pattern;
pub use pattern_set::PatternSet;
pub use project::{LayerPruning, PrunedModel};
