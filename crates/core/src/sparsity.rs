//! Sparsity and compression accounting.

use patdnn_nn::layer::Layer;

/// Non-zero statistics of one conv layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSparsity {
    /// Layer name.
    pub name: String,
    /// Dense weight count.
    pub total_weights: usize,
    /// Non-zero weight count.
    pub nonzero_weights: usize,
    /// Total kernel count (`out_c * in_c`).
    pub total_kernels: usize,
    /// Kernels with at least one non-zero weight.
    pub nonzero_kernels: usize,
}

impl LayerSparsity {
    /// Weight-level compression rate of this layer.
    pub fn compression(&self) -> f64 {
        self.total_weights as f64 / self.nonzero_weights.max(1) as f64
    }

    /// Kernel-level (connectivity) compression rate of this layer.
    pub fn kernel_compression(&self) -> f64 {
        self.total_kernels as f64 / self.nonzero_kernels.max(1) as f64
    }
}

/// Collects sparsity statistics for every conv layer of a network.
pub fn conv_sparsity(net: &mut dyn Layer) -> Vec<LayerSparsity> {
    let mut out = Vec::new();
    net.visit_convs(&mut |c| {
        let s = c.weight.value.shape4();
        let ksize = s.h * s.w;
        let nonzero_kernels = c
            .weight
            .value
            .data()
            .chunks_exact(ksize)
            .filter(|k| k.iter().any(|&w| w != 0.0))
            .count();
        out.push(LayerSparsity {
            name: c.name().to_owned(),
            total_weights: c.weight.value.len(),
            nonzero_weights: c.weight.value.count_nonzero(),
            total_kernels: s.n * s.c,
            nonzero_kernels,
        });
    });
    out
}

/// Overall conv compression across a set of layer statistics.
pub fn total_compression(stats: &[LayerSparsity]) -> f64 {
    let total: usize = stats.iter().map(|s| s.total_weights).sum();
    let nonzero: usize = stats.iter().map(|s| s.nonzero_weights).sum();
    total as f64 / nonzero.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use patdnn_nn::models::small_cnn;
    use patdnn_tensor::rng::Rng;

    #[test]
    fn dense_network_has_unit_compression() {
        let mut rng = Rng::seed_from(1);
        let mut net = small_cnn(3, 8, 4, &mut rng);
        let stats = conv_sparsity(&mut net);
        assert_eq!(stats.len(), 2);
        // Random weights are never exactly zero.
        assert!((total_compression(&stats) - 1.0).abs() < 1e-6);
        for s in &stats {
            assert_eq!(s.total_kernels, s.nonzero_kernels);
        }
    }

    #[test]
    fn zeroing_half_doubles_compression() {
        let mut rng = Rng::seed_from(2);
        let mut net = small_cnn(3, 8, 4, &mut rng);
        net.visit_convs(&mut |c| {
            let len = c.weight.value.len();
            for v in c.weight.value.data_mut()[..len / 2].iter_mut() {
                *v = 0.0;
            }
        });
        let stats = conv_sparsity(&mut net);
        assert!((total_compression(&stats) - 2.0).abs() < 0.01);
    }

    #[test]
    fn kernel_compression_counts_empty_kernels() {
        let mut rng = Rng::seed_from(3);
        let mut net = small_cnn(3, 8, 4, &mut rng);
        net.visit_convs(&mut |c| {
            // Zero the first kernel of each layer entirely.
            for v in c.weight.value.data_mut()[..9].iter_mut() {
                *v = 0.0;
            }
        });
        let stats = conv_sparsity(&mut net);
        for s in &stats {
            assert_eq!(s.nonzero_kernels, s.total_kernels - 1);
            assert!(s.kernel_compression() > 1.0);
        }
    }
}
