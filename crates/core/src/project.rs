//! Euclidean projections onto the pattern and connectivity constraint
//! sets, and the [`PrunedModel`] description consumed by the compiler.
//!
//! The paper (§4.2): "the optimal, analytical solution of the two
//! subproblems are Euclidean projections [...] for connectivity pruning,
//! the projection is: keeping αₖ kernels with largest L2 norms and setting
//! the rest of kernels to zero. For kernel pattern pruning it is similar."

use patdnn_tensor::Tensor;

use crate::pattern_set::PatternSet;

/// The post-pruning status of one kernel (one input-channel slice of a
/// filter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelStatus {
    /// Removed entirely by connectivity pruning.
    Pruned,
    /// Kept, constrained to pattern `id` of the model's pattern set.
    Pattern(usize),
    /// Kept without a pattern constraint (non-3×3 kernels).
    Dense,
}

impl KernelStatus {
    /// Is the kernel still present after pruning?
    pub fn is_kept(&self) -> bool {
        !matches!(self, KernelStatus::Pruned)
    }
}

/// Pruning decisions for one convolution layer.
///
/// Kernels are indexed filter-major: kernel `(oc, ic)` lives at
/// `oc * in_c + ic`, mirroring the OIHW weight layout.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPruning {
    /// Layer name (matches the spec / network layer name).
    pub name: String,
    /// Number of filters.
    pub out_c: usize,
    /// Number of kernels per filter.
    pub in_c: usize,
    /// Kernel size.
    pub kernel: usize,
    /// Status per kernel, `out_c * in_c` entries.
    pub kernels: Vec<KernelStatus>,
}

impl LayerPruning {
    /// Status of kernel `(oc, ic)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn kernel_at(&self, oc: usize, ic: usize) -> KernelStatus {
        assert!(
            oc < self.out_c && ic < self.in_c,
            "kernel index out of range"
        );
        self.kernels[oc * self.in_c + ic]
    }

    /// Number of kernels surviving connectivity pruning.
    pub fn kept_kernels(&self) -> usize {
        self.kernels.iter().filter(|k| k.is_kept()).count()
    }

    /// Per-filter count of surviving kernels ("filter length", the key
    /// quantity of Figure 14a).
    pub fn filter_lengths(&self) -> Vec<usize> {
        (0..self.out_c)
            .map(|oc| {
                (0..self.in_c)
                    .filter(|&ic| self.kernels[oc * self.in_c + ic].is_kept())
                    .count()
            })
            .collect()
    }

    /// Number of non-zero weights implied by the statuses.
    pub fn nonzero_weights(&self, set: &PatternSet) -> usize {
        self.kernels
            .iter()
            .map(|k| match k {
                KernelStatus::Pruned => 0,
                KernelStatus::Pattern(id) => set.get(*id).entries(),
                KernelStatus::Dense => self.kernel * self.kernel,
            })
            .sum()
    }
}

/// A fully pruned model: the shared pattern set plus per-layer decisions.
#[derive(Debug, Clone)]
pub struct PrunedModel {
    /// The candidate pattern set all layers draw from.
    pub pattern_set: PatternSet,
    /// Per-conv-layer pruning decisions, in network order.
    pub layers: Vec<LayerPruning>,
}

impl PrunedModel {
    /// Overall CONV compression rate: dense weights / surviving weights.
    pub fn conv_compression(&self) -> f64 {
        let dense: usize = self
            .layers
            .iter()
            .map(|l| l.out_c * l.in_c * l.kernel * l.kernel)
            .sum();
        let kept: usize = self
            .layers
            .iter()
            .map(|l| l.nonzero_weights(&self.pattern_set))
            .sum();
        dense as f64 / kept.max(1) as f64
    }
}

/// Number of kernels to keep for a layer of `total` kernels at a
/// connectivity pruning `rate` (e.g. 3.6× keeps `total / 3.6` kernels).
///
/// # Panics
///
/// Panics if `rate < 1.0`.
pub fn alpha_for_rate(total: usize, rate: f32) -> usize {
    assert!(rate >= 1.0, "connectivity rate must be >= 1");
    (((total as f64) / rate as f64).round() as usize).clamp(1, total)
}

/// Projects every kernel of an OIHW weight tensor onto the pattern set,
/// in place. Returns the chosen pattern id per kernel.
///
/// # Panics
///
/// Panics if the tensor's kernel size differs from the set's.
pub fn project_layer_patterns(weights: &mut Tensor, set: &PatternSet) -> Vec<usize> {
    let s = weights.shape4();
    assert_eq!(s.h, s.w, "kernels must be square");
    assert_eq!(s.h, set.kernel(), "kernel size mismatch with pattern set");
    let ksize = s.h * s.w;
    weights
        .data_mut()
        .chunks_exact_mut(ksize)
        .map(|kernel| set.project_kernel(kernel))
        .collect()
}

/// Projects an OIHW weight tensor onto the connectivity constraint: keeps
/// the `alpha` kernels with largest L2 norms, zeroes the rest, in place.
/// Returns the keep-mask per kernel.
///
/// # Panics
///
/// Panics if `alpha == 0`.
pub fn project_layer_connectivity(weights: &mut Tensor, alpha: usize) -> Vec<bool> {
    assert!(alpha > 0, "alpha must be positive");
    let s = weights.shape4();
    let ksize = s.h * s.w;
    let kernels = s.n * s.c;
    let alpha = alpha.min(kernels);
    let mut norms: Vec<(usize, f32)> = weights
        .data()
        .chunks_exact(ksize)
        .map(|k| k.iter().map(|&w| w * w).sum::<f32>())
        .enumerate()
        .collect();
    norms.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite norms")
            .then(a.0.cmp(&b.0))
    });
    let mut keep = vec![false; kernels];
    for &(i, _) in norms.iter().take(alpha) {
        keep[i] = true;
    }
    for (i, kernel) in weights.data_mut().chunks_exact_mut(ksize).enumerate() {
        if !keep[i] {
            kernel.iter_mut().for_each(|w| *w = 0.0);
        }
    }
    keep
}

/// Connectivity-only pruning: keeps `alpha` kernels (dense inside),
/// zeroes the rest. Used for the paper's "connectivity pruning" scheme
/// row in Table 2 and for layers excluded from pattern pruning.
pub fn prune_layer_connectivity_only(
    name: &str,
    weights: &mut Tensor,
    alpha: usize,
) -> LayerPruning {
    let s = weights.shape4();
    let keep = project_layer_connectivity(weights, alpha);
    let kernels = keep
        .iter()
        .map(|&k| {
            if k {
                KernelStatus::Dense
            } else {
                KernelStatus::Pruned
            }
        })
        .collect();
    LayerPruning {
        name: name.to_owned(),
        out_c: s.n,
        in_c: s.c,
        kernel: s.h,
        kernels,
    }
}

/// Jointly projects a layer: connectivity first (keep `alpha` kernels),
/// then patterns on the survivors (3×3 layers only). Returns the layer's
/// pruning record.
pub fn prune_layer(
    name: &str,
    weights: &mut Tensor,
    set: &PatternSet,
    alpha: usize,
) -> LayerPruning {
    let s = weights.shape4();
    let keep = project_layer_connectivity(weights, alpha);
    let is_3x3 = s.h == 3 && s.w == 3 && set.kernel() == 3;
    let ksize = s.h * s.w;
    let mut kernels = Vec::with_capacity(s.n * s.c);
    for (i, kernel) in weights.data_mut().chunks_exact_mut(ksize).enumerate() {
        if !keep[i] {
            kernels.push(KernelStatus::Pruned);
        } else if is_3x3 {
            kernels.push(KernelStatus::Pattern(set.project_kernel(kernel)));
        } else {
            kernels.push(KernelStatus::Dense);
        }
    }
    LayerPruning {
        name: name.to_owned(),
        out_c: s.n,
        in_c: s.c,
        kernel: s.h,
        kernels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patdnn_tensor::rng::Rng;

    #[test]
    fn alpha_rounds_and_clamps() {
        assert_eq!(alpha_for_rate(36, 3.6), 10);
        assert_eq!(alpha_for_rate(4, 100.0), 1);
        assert_eq!(alpha_for_rate(7, 1.0), 7);
    }

    #[test]
    fn pattern_projection_leaves_4_entries_per_kernel() {
        let mut rng = Rng::seed_from(1);
        let mut w = Tensor::randn(&[4, 3, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let ids = project_layer_patterns(&mut w, &set);
        assert_eq!(ids.len(), 12);
        for kernel in w.data().chunks_exact(9) {
            assert_eq!(kernel.iter().filter(|&&x| x != 0.0).count(), 4);
            assert_ne!(kernel[4], 0.0, "centre weight survives");
        }
    }

    #[test]
    fn connectivity_keeps_largest_kernels() {
        // Kernel norms increase with index; keeping 2 must keep the last 2.
        let mut data = Vec::new();
        for i in 0..4 {
            data.extend(std::iter::repeat_n((i + 1) as f32, 9));
        }
        let mut w = Tensor::from_vec(&[2, 2, 3, 3], data).unwrap();
        let keep = project_layer_connectivity(&mut w, 2);
        assert_eq!(keep, vec![false, false, true, true]);
        assert!(w.data()[..18].iter().all(|&x| x == 0.0));
        assert!(w.data()[18..].iter().all(|&x| x != 0.0));
    }

    #[test]
    fn connectivity_projection_is_l2_optimal() {
        // Among all keep-2 masks, the projection retains maximal energy.
        let mut rng = Rng::seed_from(2);
        let w0 = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        let mut w = w0.clone();
        project_layer_connectivity(&mut w, 2);
        let kept_energy: f32 = w.data().iter().map(|&x| x * x).sum();
        // Enumerate all 6 possible keep-2 masks.
        for a in 0..4 {
            for b in a + 1..4 {
                let energy: f32 = (0..4)
                    .filter(|&i| i == a || i == b)
                    .map(|i| {
                        w0.data()[i * 9..(i + 1) * 9]
                            .iter()
                            .map(|&x| x * x)
                            .sum::<f32>()
                    })
                    .sum();
                assert!(energy <= kept_energy + 1e-5);
            }
        }
    }

    #[test]
    fn prune_layer_combines_both_constraints() {
        let mut rng = Rng::seed_from(3);
        let mut w = Tensor::randn(&[4, 4, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let alpha = 8; // prune half the 16 kernels
        let lp = prune_layer("conv", &mut w, &set, alpha);
        assert_eq!(lp.kept_kernels(), 8);
        assert_eq!(lp.nonzero_weights(&set), 8 * 4);
        assert_eq!(w.count_nonzero(), 8 * 4);
        // Statuses agree with the weight tensor.
        for (i, kernel) in w.data().chunks_exact(9).enumerate() {
            let nz = kernel.iter().filter(|&&x| x != 0.0).count();
            match lp.kernels[i] {
                KernelStatus::Pruned => assert_eq!(nz, 0),
                KernelStatus::Pattern(id) => {
                    assert_eq!(nz, 4);
                    let p = set.get(id);
                    for (j, &x) in kernel.iter().enumerate() {
                        if x != 0.0 {
                            assert!(p.contains(j / 3, j % 3));
                        }
                    }
                }
                KernelStatus::Dense => unreachable!("3x3 layers never stay dense"),
            }
        }
    }

    #[test]
    fn prune_layer_1x1_is_connectivity_only() {
        let mut rng = Rng::seed_from(4);
        let mut w = Tensor::randn(&[8, 8, 1, 1], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("proj", &mut w, &set, 16);
        assert_eq!(lp.kept_kernels(), 16);
        assert!(lp
            .kernels
            .iter()
            .all(|k| matches!(k, KernelStatus::Pruned | KernelStatus::Dense)));
        assert_eq!(w.count_nonzero(), 16);
    }

    #[test]
    fn filter_lengths_count_per_row() {
        let lp = LayerPruning {
            name: "t".into(),
            out_c: 2,
            in_c: 3,
            kernel: 3,
            kernels: vec![
                KernelStatus::Pattern(0),
                KernelStatus::Pruned,
                KernelStatus::Pattern(1),
                KernelStatus::Pruned,
                KernelStatus::Pruned,
                KernelStatus::Pattern(0),
            ],
        };
        assert_eq!(lp.filter_lengths(), vec![2, 1]);
        assert_eq!(lp.kernel_at(0, 2), KernelStatus::Pattern(1));
    }

    #[test]
    fn compression_rate_matches_hand_count() {
        let set = PatternSet::standard(4);
        let lp = LayerPruning {
            name: "t".into(),
            out_c: 1,
            in_c: 2,
            kernel: 3,
            kernels: vec![KernelStatus::Pattern(0), KernelStatus::Pruned],
        };
        let pm = PrunedModel {
            pattern_set: set,
            layers: vec![lp],
        };
        // Dense 18 weights, kept 4 -> 4.5x.
        assert!((pm.conv_compression() - 4.5).abs() < 1e-9);
    }
}
