//! Pattern set design (§4.1 of the paper).
//!
//! "First, for the pre-trained DNN, we scan all the kernels, and for each
//! kernel, we find the four weights with largest magnitudes (including
//! the central weight). [...] We count and select the Top-k most commonly
//! appeared natural patterns across all kernels in the DNN, thereby
//! forming the pattern candidate set."

use std::collections::HashMap;

use patdnn_tensor::Tensor;

use crate::pattern::Pattern;

/// The candidate set of kernel patterns for a model.
///
/// # Examples
///
/// ```
/// use patdnn_core::PatternSet;
///
/// let set = PatternSet::standard(8);
/// assert_eq!(set.len(), 8);
/// let mut kernel = [0.5, 0.6, 0.4, 0.7, 0.9, 0.8, 0.3, 0.1, 0.2];
/// let id = set.project_kernel(&mut kernel);
/// assert!(id < 8);
/// assert_eq!(kernel.iter().filter(|&&w| w != 0.0).count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSet {
    patterns: Vec<Pattern>,
}

impl PatternSet {
    /// Builds a set from explicit patterns.
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty or the patterns disagree in kernel
    /// size.
    pub fn from_patterns(patterns: Vec<Pattern>) -> Self {
        assert!(!patterns.is_empty(), "pattern set cannot be empty");
        let k = patterns[0].kernel();
        assert!(
            patterns.iter().all(|p| p.kernel() == k),
            "patterns must share a kernel size"
        );
        PatternSet { patterns }
    }

    /// Harvests natural patterns from a pre-trained model's 3×3 conv
    /// weight tensors (OIHW) and keeps the top-k most frequent.
    ///
    /// Tensors whose kernels are not 3×3 are skipped — the paper applies
    /// kernel pattern pruning only to 3×3 kernels (§4.3).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or no 3×3 kernels are found.
    pub fn harvest(conv_weights: &[&Tensor], k: usize) -> Self {
        assert!(k > 0, "pattern count must be positive");
        let mut counts: HashMap<Pattern, usize> = HashMap::new();
        for w in conv_weights {
            let s = w.shape4();
            if s.h != 3 || s.w != 3 {
                continue;
            }
            for kernel in w.data().chunks_exact(9) {
                let mut buf = [0.0f32; 9];
                buf.copy_from_slice(kernel);
                *counts.entry(Pattern::natural_of(&buf)).or_insert(0) += 1;
            }
        }
        assert!(!counts.is_empty(), "no 3x3 kernels found to harvest from");
        let mut ranked: Vec<(Pattern, usize)> = counts.into_iter().collect();
        // Sort by descending frequency, then by mask for determinism.
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let patterns = ranked
            .into_iter()
            .take(k)
            .map(|(p, _)| p)
            .collect::<Vec<_>>();
        PatternSet { patterns }
    }

    /// A fixed, model-independent fallback set: the `k` natural patterns
    /// whose three neighbours are most adjacent to the centre (these are
    /// the shapes that dominate harvests in practice, cf. the paper's
    /// visual-system argument).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > 56`.
    pub fn standard(k: usize) -> Self {
        assert!(
            (1..=56).contains(&k),
            "standard set supports 1..=56 patterns"
        );
        let mut all = Pattern::all_natural();
        // Rank by total Chebyshev distance of kept neighbours to the centre,
        // preferring edge-adjacent (cross-shaped) patterns first.
        let dist = |p: &Pattern| -> (usize, u64) {
            let d: usize = p
                .positions()
                .iter()
                .filter(|&&(r, c)| (r, c) != (1, 1))
                .map(|&(r, c)| {
                    let dr = r.abs_diff(1);
                    let dc = c.abs_diff(1);
                    // Edge neighbours (distance 1) cost 1, corners cost 2.
                    dr + dc
                })
                .sum();
            (d, p.mask())
        };
        all.sort_by_key(dist);
        PatternSet {
            patterns: all.into_iter().take(k).collect(),
        }
    }

    /// Number of patterns in the set.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Returns `true` if the set holds no patterns (never, by invariant).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The pattern with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: usize) -> Pattern {
        self.patterns[id]
    }

    /// Iterates over `(id, pattern)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Pattern)> + '_ {
        self.patterns.iter().copied().enumerate()
    }

    /// Kernel size the set applies to.
    pub fn kernel(&self) -> usize {
        self.patterns[0].kernel()
    }

    /// Selects the L2-nearest pattern for `kernel` (the Euclidean
    /// projection step of the extended ADMM), applies it in place, and
    /// returns its identifier.
    ///
    /// The L2-nearest pattern is the one retaining maximal energy, since
    /// the projection error is `‖kernel‖² - kept_energy`.
    pub fn project_kernel(&self, kernel: &mut [f32]) -> usize {
        let best = self.best_pattern(kernel);
        self.patterns[best].apply(kernel);
        best
    }

    /// Returns the identifier of the L2-nearest pattern without applying
    /// it.
    pub fn best_pattern(&self, kernel: &[f32]) -> usize {
        let mut best = 0;
        let mut best_energy = f32::NEG_INFINITY;
        for (i, p) in self.patterns.iter().enumerate() {
            let e = p.kept_energy(kernel);
            if e > best_energy {
                best_energy = e;
                best = i;
            }
        }
        best
    }
}

impl std::ops::Index<usize> for PatternSet {
    type Output = Pattern;

    fn index(&self, id: usize) -> &Pattern {
        &self.patterns[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patdnn_tensor::rng::Rng;

    fn random_conv(oc: usize, ic: usize, rng: &mut Rng) -> Tensor {
        Tensor::randn(&[oc, ic, 3, 3], rng)
    }

    #[test]
    fn harvest_returns_requested_count() {
        let mut rng = Rng::seed_from(1);
        let w1 = random_conv(8, 4, &mut rng);
        let w2 = random_conv(16, 8, &mut rng);
        let set = PatternSet::harvest(&[&w1, &w2], 8);
        assert_eq!(set.len(), 8);
        assert!(set
            .iter()
            .all(|(_, p)| p.entries() == 4 && p.includes_center()));
    }

    #[test]
    fn harvest_ranks_by_frequency() {
        // Construct kernels that all share one natural pattern, plus one
        // kernel with a different pattern: the common one must rank first.
        let common = [1.0f32, 0.9, 0.0, 0.8, 0.7, 0.0, 0.0, 0.0, 0.0];
        let rare = [0.0f32, 0.0, 0.9, 0.0, 0.7, 0.8, 0.0, 0.0, 1.0];
        let mut data = Vec::new();
        for _ in 0..5 {
            data.extend_from_slice(&common);
        }
        data.extend_from_slice(&rare);
        let w = Tensor::from_vec(&[6, 1, 3, 3], data).unwrap();
        let set = PatternSet::harvest(&[&w], 2);
        assert_eq!(set.get(0), Pattern::natural_of(&common));
        assert_eq!(set.get(1), Pattern::natural_of(&rare));
    }

    #[test]
    fn harvest_skips_non_3x3() {
        let mut rng = Rng::seed_from(2);
        let w1 = Tensor::randn(&[8, 8, 1, 1], &mut rng);
        let w3 = random_conv(4, 4, &mut rng);
        let set = PatternSet::harvest(&[&w1, &w3], 4);
        assert_eq!(set.kernel(), 3);
    }

    #[test]
    #[should_panic(expected = "no 3x3 kernels")]
    fn harvest_without_3x3_panics() {
        let mut rng = Rng::seed_from(3);
        let w1 = Tensor::randn(&[8, 8, 1, 1], &mut rng);
        PatternSet::harvest(&[&w1], 4);
    }

    #[test]
    fn projection_picks_max_energy_pattern() {
        let set = PatternSet::standard(8);
        let mut rng = Rng::seed_from(4);
        for _ in 0..50 {
            let kernel: Vec<f32> = (0..9).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let id = set.best_pattern(&kernel);
            let chosen_energy = set.get(id).kept_energy(&kernel);
            for (_, p) in set.iter() {
                assert!(p.kept_energy(&kernel) <= chosen_energy + 1e-6);
            }
        }
    }

    #[test]
    fn projection_is_idempotent() {
        let set = PatternSet::standard(6);
        let mut rng = Rng::seed_from(5);
        let mut kernel: Vec<f32> = (0..9).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let id1 = set.project_kernel(&mut kernel);
        let snapshot = kernel.clone();
        let id2 = set.project_kernel(&mut kernel);
        assert_eq!(id1, id2);
        assert_eq!(kernel, snapshot);
    }

    #[test]
    fn standard_prefers_cross_patterns() {
        let set = PatternSet::standard(4);
        // The first pattern keeps the four edge-adjacent neighbours minus
        // one; all of the first four avoid using more than one corner.
        for (_, p) in set.iter() {
            let corners = [(0, 0), (0, 2), (2, 0), (2, 2)];
            let corner_count = corners.iter().filter(|&&(r, c)| p.contains(r, c)).count();
            assert!(corner_count <= 1, "pattern {p} uses {corner_count} corners");
        }
    }
}
