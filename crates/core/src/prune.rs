//! Baseline pruning schemes the paper compares against (Tables 2 and 4).
//!
//! - **Magnitude non-structured** pruning (Deep-Compression-style): keep
//!   the largest-magnitude weights, retrain with the mask.
//! - **ADMM non-structured** (ADMM-NN): same constraint, solved with the
//!   generic ADMM engine of [`crate::admm`].
//! - **Filter pruning** and **channel pruning** (structured): remove whole
//!   filters / input channels by L2 norm, retrain.
//! - **Pattern + connectivity** (ours) lives in [`crate::admm::AdmmPruner`].

use patdnn_nn::data::Dataset;
use patdnn_nn::layer::Layer;
use patdnn_nn::network::Sequential;
use patdnn_nn::train::{evaluate, Accuracy};
use patdnn_tensor::rng::Rng;
use patdnn_tensor::Tensor;

use crate::admm::{
    conv_weights, for_each_conv, masks_from_nonzero, retrain_masked, AdmmConfig, AdmmSolver,
    SparsityConstraint,
};
use crate::pattern_set::PatternSet;

/// Outcome of applying a pruning scheme to a trained network.
#[derive(Debug, Clone)]
pub struct PruneOutcome {
    /// Scheme name for reports.
    pub scheme: String,
    /// Accuracy before pruning.
    pub before: Accuracy,
    /// Accuracy after pruning and retraining.
    pub after: Accuracy,
    /// CONV-layer compression rate (dense weights / non-zero weights).
    pub conv_compression: f64,
}

/// Measures the overall conv compression of a network in place.
pub fn measure_conv_compression(net: &mut Sequential) -> f64 {
    let mut dense = 0usize;
    let mut nonzero = 0usize;
    net.visit_convs(&mut |c| {
        dense += c.weight.value.len();
        nonzero += c.weight.value.count_nonzero();
    });
    dense as f64 / nonzero.max(1) as f64
}

/// One-shot pattern + connectivity projection of every 3×3 conv layer
/// in a network, in place: harvest a per-layer `patterns`-entry pattern
/// set from the layer's own weights, then keep `total / conn_rate`
/// kernels and project the survivors onto their nearest pattern.
///
/// This is the projection step alone — no ADMM loop, no retraining —
/// which is exactly what deployment-side tooling (the serving demo and
/// benchmarks) needs to manufacture a prunable network. Accuracy-bearing
/// pruning lives in [`crate::admm::AdmmPruner`]. Non-3×3 layers are
/// left untouched.
pub fn pattern_project_network(net: &mut Sequential, patterns: usize, conn_rate: f32) {
    net.visit_convs(&mut |conv| {
        if conv.kernel() != 3 {
            return;
        }
        let set = PatternSet::harvest(&[&conv.weight.value], patterns);
        let total = conv.out_channels() * conv.in_channels();
        let alpha = crate::project::alpha_for_rate(total, conn_rate);
        let mut w = conv.weight.value.clone();
        crate::project::prune_layer(conv.name(), &mut w, &set, alpha);
        conv.weight.value = w;
    });
}

/// Magnitude-based non-structured pruning of every conv layer at a
/// uniform `rate`, followed by masked retraining.
pub fn magnitude_prune(
    net: &mut Sequential,
    data: &Dataset,
    rate: f32,
    retrain_epochs: usize,
    batch_size: usize,
    lr: f32,
    rng: &mut Rng,
) -> PruneOutcome {
    let before = evaluate(net, data);
    for_each_conv(net, |_, c| {
        let w = &mut c.weight.value;
        let keep = ((w.len() as f64 / rate as f64).round() as usize).clamp(1, w.len());
        let mut mags: Vec<f32> = w.data().iter().map(|x| x.abs()).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).expect("finite weights"));
        let threshold = mags[keep - 1];
        let mut kept = 0usize;
        for v in w.data_mut().iter_mut() {
            // Strictly enforce the count under ties.
            if v.abs() >= threshold && kept < keep {
                kept += 1;
            } else {
                *v = 0.0;
            }
        }
    });
    let masks = masks_from_nonzero(net);
    retrain_masked(net, data, &masks, retrain_epochs, batch_size, lr, rng);
    let after = evaluate(net, data);
    PruneOutcome {
        scheme: format!("magnitude non-structured {rate:.1}x"),
        before,
        after,
        conv_compression: measure_conv_compression(net),
    }
}

/// ADMM-regularized non-structured pruning (the ADMM-NN baseline):
/// identical constraint to [`magnitude_prune`] but solved by ADMM before
/// the hard projection.
pub fn admm_nonstructured_prune(
    net: &mut Sequential,
    data: &Dataset,
    rate: f32,
    cfg: &AdmmConfig,
    rng: &mut Rng,
) -> PruneOutcome {
    let before = evaluate(net, data);
    let weights = conv_weights(net);
    let cons = SparsityConstraint::from_rate(&weights, rate);
    let solver = AdmmSolver::new(vec![&cons], cfg.clone());
    solver.run(net, data, rng);
    // Hard projection then masked retraining.
    for_each_conv(net, |l, c| {
        use crate::admm::AdmmConstraint;
        cons.project(l, &mut c.weight.value);
    });
    let masks = masks_from_nonzero(net);
    retrain_masked(
        net,
        data,
        &masks,
        cfg.retrain_epochs,
        cfg.batch_size,
        cfg.lr,
        rng,
    );
    let after = evaluate(net, data);
    PruneOutcome {
        scheme: format!("ADMM non-structured {rate:.1}x"),
        before,
        after,
        conv_compression: measure_conv_compression(net),
    }
}

/// Zeroes the filters (output channels) with smallest L2 norm in an OIHW
/// tensor, keeping `keep` of them. Returns the keep-mask.
pub fn filter_prune_layer(weights: &mut Tensor, keep: usize) -> Vec<bool> {
    let s = weights.shape4();
    let fsize = s.c * s.h * s.w;
    let keep = keep.clamp(1, s.n);
    let mut norms: Vec<(usize, f32)> = weights
        .data()
        .chunks_exact(fsize)
        .map(|f| f.iter().map(|&w| w * w).sum::<f32>())
        .enumerate()
        .collect();
    norms.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    let mut mask = vec![false; s.n];
    for &(i, _) in norms.iter().take(keep) {
        mask[i] = true;
    }
    for (i, f) in weights.data_mut().chunks_exact_mut(fsize).enumerate() {
        if !mask[i] {
            f.iter_mut().for_each(|w| *w = 0.0);
        }
    }
    mask
}

/// Zeroes the input channels with smallest aggregate L2 norm in an OIHW
/// tensor, keeping `keep` of them. Returns the keep-mask.
pub fn channel_prune_layer(weights: &mut Tensor, keep: usize) -> Vec<bool> {
    let s = weights.shape4();
    let ksize = s.h * s.w;
    let keep = keep.clamp(1, s.c);
    let mut norms = vec![0.0f32; s.c];
    for oc in 0..s.n {
        for ic in 0..s.c {
            let base = (oc * s.c + ic) * ksize;
            norms[ic] += weights.data()[base..base + ksize]
                .iter()
                .map(|&w| w * w)
                .sum::<f32>();
        }
    }
    let mut order: Vec<usize> = (0..s.c).collect();
    order.sort_by(|&a, &b| {
        norms[b]
            .partial_cmp(&norms[a])
            .expect("finite")
            .then(a.cmp(&b))
    });
    let mut mask = vec![false; s.c];
    for &i in order.iter().take(keep) {
        mask[i] = true;
    }
    for oc in 0..s.n {
        for ic in 0..s.c {
            if !mask[ic] {
                let base = (oc * s.c + ic) * ksize;
                weights.data_mut()[base..base + ksize]
                    .iter_mut()
                    .for_each(|w| *w = 0.0);
            }
        }
    }
    mask
}

/// Structured pruning kind for [`structured_prune`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructuredKind {
    /// Remove whole filters (output channels).
    Filter,
    /// Remove whole input channels.
    Channel,
}

/// Structured (filter or channel) pruning of every conv layer at a
/// uniform `rate`, followed by masked retraining.
pub fn structured_prune(
    net: &mut Sequential,
    data: &Dataset,
    kind: StructuredKind,
    rate: f32,
    retrain_epochs: usize,
    batch_size: usize,
    lr: f32,
    rng: &mut Rng,
) -> PruneOutcome {
    let before = evaluate(net, data);
    for_each_conv(net, |_, c| {
        let s = c.weight.value.shape4();
        match kind {
            StructuredKind::Filter => {
                let keep = ((s.n as f64 / rate as f64).round() as usize).clamp(1, s.n);
                filter_prune_layer(&mut c.weight.value, keep);
            }
            StructuredKind::Channel => {
                let keep = ((s.c as f64 / rate as f64).round() as usize).clamp(1, s.c);
                channel_prune_layer(&mut c.weight.value, keep);
            }
        }
    });
    let masks = masks_from_nonzero(net);
    retrain_masked(net, data, &masks, retrain_epochs, batch_size, lr, rng);
    let after = evaluate(net, data);
    let kind_name = match kind {
        StructuredKind::Filter => "filter",
        StructuredKind::Channel => "channel",
    };
    PruneOutcome {
        scheme: format!("{kind_name} structured {rate:.1}x"),
        before,
        after,
        conv_compression: measure_conv_compression(net),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patdnn_nn::models::small_cnn;
    use patdnn_nn::optim::Adam;
    use patdnn_nn::train::{train, TrainConfig};

    fn trained_setup(rng: &mut Rng) -> (Sequential, Dataset) {
        let data = Dataset::synthetic(3, 12, 3, 8, 8, 0.4, rng);
        let mut net = small_cnn(3, 8, 3, rng);
        let mut opt = Adam::new(2e-3);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 6,
            verbose: false,
        };
        train(&mut net, &data, &mut opt, &cfg, rng);
        (net, data)
    }

    #[test]
    fn magnitude_prune_hits_requested_rate() {
        let mut rng = Rng::seed_from(20);
        let (mut net, data) = trained_setup(&mut rng);
        let outcome = magnitude_prune(&mut net, &data, 4.0, 1, 6, 1e-3, &mut rng);
        assert!(
            (outcome.conv_compression - 4.0).abs() < 0.3,
            "compression {}",
            outcome.conv_compression
        );
    }

    #[test]
    fn admm_nonstructured_hits_requested_rate() {
        let mut rng = Rng::seed_from(21);
        let (mut net, data) = trained_setup(&mut rng);
        let cfg = AdmmConfig {
            iterations: 2,
            epochs_per_iteration: 1,
            retrain_epochs: 1,
            batch_size: 6,
            lr: 1e-3,
            ..AdmmConfig::default()
        };
        let outcome = admm_nonstructured_prune(&mut net, &data, 6.0, &cfg, &mut rng);
        assert!(
            (outcome.conv_compression - 6.0).abs() < 0.5,
            "compression {}",
            outcome.conv_compression
        );
    }

    #[test]
    fn filter_prune_zeroes_whole_filters() {
        let mut rng = Rng::seed_from(22);
        let mut w = Tensor::randn(&[6, 4, 3, 3], &mut rng);
        let mask = filter_prune_layer(&mut w, 3);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 3);
        for (oc, f) in w.data().chunks_exact(4 * 9).enumerate() {
            let nz = f.iter().filter(|&&x| x != 0.0).count();
            if mask[oc] {
                assert!(nz > 0);
            } else {
                assert_eq!(nz, 0);
            }
        }
    }

    #[test]
    fn channel_prune_zeroes_whole_channels() {
        let mut rng = Rng::seed_from(23);
        let mut w = Tensor::randn(&[4, 6, 3, 3], &mut rng);
        let mask = channel_prune_layer(&mut w, 2);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 2);
        for oc in 0..4 {
            for ic in 0..6 {
                let base = (oc * 6 + ic) * 9;
                let nz = w.data()[base..base + 9]
                    .iter()
                    .filter(|&&x| x != 0.0)
                    .count();
                if mask[ic] {
                    assert!(nz > 0);
                } else {
                    assert_eq!(nz, 0);
                }
            }
        }
    }

    #[test]
    fn structured_prune_reports_compression() {
        let mut rng = Rng::seed_from(24);
        let (mut net, data) = trained_setup(&mut rng);
        let outcome = structured_prune(
            &mut net,
            &data,
            StructuredKind::Filter,
            2.0,
            1,
            6,
            1e-3,
            &mut rng,
        );
        assert!(
            outcome.conv_compression >= 1.8,
            "compression {}",
            outcome.conv_compression
        );
    }

    #[test]
    fn retraining_recovers_accuracy_after_mild_pruning() {
        let mut rng = Rng::seed_from(25);
        let (mut net, data) = trained_setup(&mut rng);
        let outcome = magnitude_prune(&mut net, &data, 2.0, 3, 6, 1e-3, &mut rng);
        // Mild 2x pruning with retraining should stay close to original.
        assert!(
            outcome.after.top1 >= outcome.before.top1 - 0.15,
            "before {:?} after {:?}",
            outcome.before,
            outcome.after
        );
    }

    #[test]
    fn pattern_projection_helper_prunes_every_3x3_layer() {
        let mut rng = Rng::seed_from(9);
        let mut net = small_cnn(3, 8, 3, &mut rng);
        pattern_project_network(&mut net, 8, 2.0);
        let mut checked = 0;
        net.visit_convs(&mut |c| {
            checked += 1;
            let total = c.out_channels() * c.in_channels();
            // Half the kernels survive, each constrained to 4 entries.
            assert_eq!(
                c.weight.value.count_nonzero(),
                crate::project::alpha_for_rate(total, 2.0) * 4,
                "{}",
                c.name()
            );
        });
        assert_eq!(checked, 2);
        assert!(measure_conv_compression(&mut net) > 4.0);
    }
}
