//! The extended ADMM solution framework (§4.2 of the paper).
//!
//! The pruning problem is
//!
//! ```text
//! minimize f({W}, {b})   subject to  Wₖ ∈ Sₖ (pattern),  Wₖ ∈ S'ₖ (connectivity)
//! ```
//!
//! ADMM decomposes it into (1) a loss-plus-quadratic subproblem solved by
//! SGD/Adam, and (2)/(3) Euclidean projections onto the constraint sets,
//! with dual updates after each iteration. The engine here
//! ([`AdmmSolver`]) is generic over constraint sets (the paper's
//! "extension" is exactly the pattern-selection constraint), so the
//! non-structured ADMM baseline of Table 4 reuses it with a plain
//! sparsity constraint.

use patdnn_nn::data::Dataset;
use patdnn_nn::layer::{Layer, Mode};
use patdnn_nn::loss::softmax_cross_entropy;
use patdnn_nn::network::Sequential;
use patdnn_nn::optim::{Adam, Optimizer};
use patdnn_tensor::rng::Rng;
use patdnn_tensor::Tensor;

use crate::pattern_set::PatternSet;
use crate::project::{
    alpha_for_rate, project_layer_connectivity, project_layer_patterns, prune_layer, LayerPruning,
    PrunedModel,
};

/// Applies `f` to every conv layer with its stable index.
pub fn for_each_conv(net: &mut dyn Layer, mut f: impl FnMut(usize, &mut patdnn_nn::conv::Conv2d)) {
    let mut i = 0;
    net.visit_convs(&mut |c| {
        f(i, c);
        i += 1;
    });
}

/// Clones the weight tensor of every conv layer, in visit order.
pub fn conv_weights(net: &mut dyn Layer) -> Vec<Tensor> {
    let mut out = Vec::new();
    net.visit_convs(&mut |c| out.push(c.weight.value.clone()));
    out
}

/// A constraint set `Wₖ ∈ S` that ADMM can project onto.
pub trait AdmmConstraint {
    /// Human-readable name for reports.
    fn name(&self) -> &str;

    /// Whether the constraint applies to conv layer `layer`.
    fn applies_to(&self, layer: usize) -> bool;

    /// Euclidean projection of `w` onto the constraint set, in place.
    fn project(&self, layer: usize, w: &mut Tensor);
}

/// Kernel-pattern constraint: every 3×3 kernel matches a pattern of the
/// candidate set.
pub struct PatternConstraint {
    set: PatternSet,
    is_3x3: Vec<bool>,
}

impl PatternConstraint {
    /// Builds the constraint for layers whose kernels are 3×3.
    pub fn new(set: PatternSet, layer_shapes: &[Tensor]) -> Self {
        let is_3x3 = layer_shapes
            .iter()
            .map(|w| {
                let s = w.shape4();
                s.h == 3 && s.w == 3
            })
            .collect();
        PatternConstraint { set, is_3x3 }
    }

    /// The pattern set this constraint projects onto.
    pub fn pattern_set(&self) -> &PatternSet {
        &self.set
    }
}

impl AdmmConstraint for PatternConstraint {
    fn name(&self) -> &str {
        "kernel-pattern"
    }

    fn applies_to(&self, layer: usize) -> bool {
        self.is_3x3.get(layer).copied().unwrap_or(false)
    }

    fn project(&self, _layer: usize, w: &mut Tensor) {
        project_layer_patterns(w, &self.set);
    }
}

/// Connectivity constraint: at most `αₖ` non-zero kernels per layer.
pub struct ConnectivityConstraint {
    alphas: Vec<usize>,
}

impl ConnectivityConstraint {
    /// Builds per-layer α from a uniform pruning rate, optionally sparing
    /// the first layer (halved rate), per the paper's heuristic.
    pub fn from_rate(layer_weights: &[Tensor], rate: f32, spare_first: bool) -> Self {
        let alphas = layer_weights
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let s = w.shape4();
                let layer_rate = if i == 0 && spare_first {
                    (rate / 2.0).max(1.0)
                } else {
                    rate
                };
                alpha_for_rate(s.n * s.c, layer_rate)
            })
            .collect();
        ConnectivityConstraint { alphas }
    }

    /// Per-layer keep counts.
    pub fn alphas(&self) -> &[usize] {
        &self.alphas
    }
}

impl AdmmConstraint for ConnectivityConstraint {
    fn name(&self) -> &str {
        "connectivity"
    }

    fn applies_to(&self, layer: usize) -> bool {
        layer < self.alphas.len()
    }

    fn project(&self, layer: usize, w: &mut Tensor) {
        project_layer_connectivity(w, self.alphas[layer]);
    }
}

/// Non-structured sparsity constraint: at most `n` non-zero *weights* per
/// layer (the ADMM-NN baseline).
pub struct SparsityConstraint {
    keep: Vec<usize>,
}

impl SparsityConstraint {
    /// Builds per-layer keep counts from a uniform weight pruning rate.
    pub fn from_rate(layer_weights: &[Tensor], rate: f32) -> Self {
        let keep = layer_weights
            .iter()
            .map(|w| ((w.len() as f64 / rate as f64).round() as usize).clamp(1, w.len()))
            .collect();
        SparsityConstraint { keep }
    }
}

impl AdmmConstraint for SparsityConstraint {
    fn name(&self) -> &str {
        "non-structured"
    }

    fn applies_to(&self, layer: usize) -> bool {
        layer < self.keep.len()
    }

    fn project(&self, layer: usize, w: &mut Tensor) {
        let keep = self.keep[layer];
        let mut idx: Vec<usize> = (0..w.len()).collect();
        idx.sort_by(|&a, &b| {
            w.data()[b]
                .abs()
                .partial_cmp(&w.data()[a].abs())
                .expect("finite weights")
                .then(a.cmp(&b))
        });
        let cutoff: std::collections::HashSet<usize> = idx.into_iter().take(keep).collect();
        for (i, v) in w.data_mut().iter_mut().enumerate() {
            if !cutoff.contains(&i) {
                *v = 0.0;
            }
        }
    }
}

/// Hyperparameters of the ADMM pruning run.
#[derive(Debug, Clone)]
pub struct AdmmConfig {
    /// Size of the candidate pattern set (the paper settles on 8).
    pub pattern_count: usize,
    /// Uniform connectivity pruning rate (the paper uses 3.6×).
    pub connectivity_rate: f32,
    /// Halve the pruning rate of the first conv layer (paper heuristic).
    pub spare_first_layer: bool,
    /// ADMM penalty ρ.
    pub rho: f32,
    /// Outer ADMM iterations.
    pub iterations: usize,
    /// Subproblem-1 epochs per ADMM iteration.
    pub epochs_per_iteration: usize,
    /// Masked retraining epochs after the final projection.
    pub retrain_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Skip kernel-pattern pruning entirely (connectivity-only scheme,
    /// used by the Table 2 comparison).
    pub connectivity_only: bool,
}

impl Default for AdmmConfig {
    fn default() -> Self {
        AdmmConfig {
            pattern_count: 8,
            connectivity_rate: 3.6,
            spare_first_layer: true,
            rho: 1e-2,
            iterations: 4,
            epochs_per_iteration: 2,
            retrain_epochs: 4,
            batch_size: 16,
            lr: 1e-3,
            connectivity_only: false,
        }
    }
}

/// Convergence diagnostics of an ADMM run.
#[derive(Debug, Clone, Default)]
pub struct AdmmReport {
    /// Mean training loss after each ADMM iteration's subproblem 1.
    pub iteration_losses: Vec<f32>,
    /// Frobenius primal residual `‖W − Z‖` summed over constraints and
    /// layers, per iteration.
    pub primal_residuals: Vec<f32>,
    /// Mean training loss over the final masked-retraining epochs.
    pub retrain_losses: Vec<f32>,
}

/// Generic ADMM engine over a set of constraints.
///
/// After [`AdmmSolver::run`], the network's weights have been regularized
/// towards all constraint sets; the caller performs the final hard
/// projection ("masked mapping") and retraining.
pub struct AdmmSolver<'c> {
    constraints: Vec<&'c dyn AdmmConstraint>,
    cfg: AdmmConfig,
}

impl<'c> AdmmSolver<'c> {
    /// Creates a solver over the given constraints.
    pub fn new(constraints: Vec<&'c dyn AdmmConstraint>, cfg: AdmmConfig) -> Self {
        AdmmSolver { constraints, cfg }
    }

    /// Runs the ADMM iterations on `net`.
    pub fn run(&self, net: &mut Sequential, data: &Dataset, rng: &mut Rng) -> AdmmReport {
        let weights = conv_weights(net);
        let n_layers = weights.len();
        let n_cons = self.constraints.len();

        // Auxiliary Z and dual U per (constraint, layer).
        let mut z: Vec<Vec<Tensor>> = Vec::with_capacity(n_cons);
        let mut u: Vec<Vec<Tensor>> = Vec::with_capacity(n_cons);
        for cons in &self.constraints {
            let mut zc = Vec::with_capacity(n_layers);
            let mut uc = Vec::with_capacity(n_layers);
            for (l, w) in weights.iter().enumerate() {
                let mut zl = w.clone();
                if cons.applies_to(l) {
                    cons.project(l, &mut zl);
                }
                zc.push(zl);
                uc.push(Tensor::zeros(w.shape()));
            }
            z.push(zc);
            u.push(uc);
        }

        let mut opt = Adam::new(self.cfg.lr);
        let mut report = AdmmReport::default();

        for _iter in 0..self.cfg.iterations {
            // Subproblem 1: loss + Σ ρ/2 ‖W − Z + U‖².
            let mut loss_acc = 0.0f64;
            let mut batches_seen = 0usize;
            for _epoch in 0..self.cfg.epochs_per_iteration {
                for batch in data.epoch_batches(self.cfg.batch_size, rng) {
                    let (x, t) = data.batch(&batch);
                    net.zero_grads();
                    let logits = net.forward(&x, Mode::Train);
                    let (loss, dl) = softmax_cross_entropy(&logits, &t);
                    net.backward(&dl);
                    // Add proximal gradients ρ(W − Z + U) per constraint.
                    for_each_conv(net, |l, c| {
                        let wsnap: Vec<f32> = c.weight.value.data().to_vec();
                        let g = c.weight.grad_mut();
                        for (ci, cons) in self.constraints.iter().enumerate() {
                            if !cons.applies_to(l) {
                                continue;
                            }
                            let zl = z[ci][l].data();
                            let ul = u[ci][l].data();
                            for (j, gj) in g.data_mut().iter_mut().enumerate() {
                                *gj += self.cfg.rho * (wsnap[j] - zl[j] + ul[j]);
                            }
                        }
                    });
                    opt.step(net);
                    loss_acc += loss as f64;
                    batches_seen += 1;
                }
            }
            report
                .iteration_losses
                .push((loss_acc / batches_seen.max(1) as f64) as f32);

            // Subproblems 2..: Z ← Π(W + U); dual update U ← U + W − Z.
            let mut residual = 0.0f64;
            for_each_conv(net, |l, c| {
                let w = &c.weight.value;
                for (ci, cons) in self.constraints.iter().enumerate() {
                    if !cons.applies_to(l) {
                        continue;
                    }
                    let mut znew = w.zip_map(&u[ci][l], |a, b| a + b).expect("same shape");
                    cons.project(l, &mut znew);
                    // U += W - Z
                    let diff = w.zip_map(&znew, |a, b| a - b).expect("same shape");
                    residual += diff.l2_norm() as f64;
                    u[ci][l].axpy(1.0, &diff);
                    z[ci][l] = znew;
                }
            });
            report.primal_residuals.push(residual as f32);
        }
        report
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdmmConfig {
        &self.cfg
    }
}

/// Per-conv-layer binary masks (1.0 = trainable, 0.0 = pruned).
pub type WeightMasks = Vec<Vec<f32>>;

/// Derives masks from the current non-zero structure of conv weights.
pub fn masks_from_nonzero(net: &mut dyn Layer) -> WeightMasks {
    let mut masks = Vec::new();
    net.visit_convs(&mut |c| {
        masks.push(
            c.weight
                .value
                .data()
                .iter()
                .map(|&w| if w != 0.0 { 1.0 } else { 0.0 })
                .collect(),
        );
    });
    masks
}

/// Zeroes masked weight positions in place.
pub fn apply_masks(net: &mut dyn Layer, masks: &WeightMasks) {
    for_each_conv(net, |l, c| {
        for (w, &m) in c.weight.value.data_mut().iter_mut().zip(&masks[l]) {
            *w *= m;
        }
    });
}

/// Trains `net` for `epochs` while keeping masked weights at exactly zero
/// (the paper's "masked mapping and retraining" step).
pub fn retrain_masked(
    net: &mut Sequential,
    data: &Dataset,
    masks: &WeightMasks,
    epochs: usize,
    batch_size: usize,
    lr: f32,
    rng: &mut Rng,
) -> Vec<f32> {
    let mut opt = Adam::new(lr);
    let mut losses = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let mut loss_acc = 0.0f64;
        let mut seen = 0usize;
        for batch in data.epoch_batches(batch_size, rng) {
            let (x, t) = data.batch(&batch);
            net.zero_grads();
            let logits = net.forward(&x, Mode::Train);
            let (loss, dl) = softmax_cross_entropy(&logits, &t);
            net.backward(&dl);
            // Mask gradients so moments stay clean, then re-apply the mask
            // after the step in case optimizer state still moves weights.
            for_each_conv(net, |l, c| {
                let g = c.weight.grad_mut();
                for (gj, &m) in g.data_mut().iter_mut().zip(&masks[l]) {
                    *gj *= m;
                }
            });
            opt.step(net);
            apply_masks(net, masks);
            loss_acc += loss as f64;
            seen += 1;
        }
        losses.push((loss_acc / seen.max(1) as f64) as f32);
    }
    losses
}

/// End-to-end pattern + connectivity pruner: the paper's full training
/// stage (Figure 6).
///
/// # Examples
///
/// ```no_run
/// use patdnn_core::{AdmmConfig, AdmmPruner};
/// use patdnn_nn::data::Dataset;
/// use patdnn_nn::models::vgg_small;
/// use patdnn_tensor::rng::Rng;
///
/// let mut rng = Rng::seed_from(0);
/// let data = Dataset::cifar_like(20, 0.5, &mut rng);
/// let mut net = vgg_small(10, &mut rng);
/// let pruner = AdmmPruner::new(AdmmConfig::default());
/// let (pruned, report) = pruner.prune(&mut net, &data, &mut rng);
/// println!("compression {:.1}x", pruned.conv_compression());
/// assert!(!report.iteration_losses.is_empty());
/// ```
pub struct AdmmPruner {
    cfg: AdmmConfig,
}

impl AdmmPruner {
    /// Creates a pruner with the given configuration.
    pub fn new(cfg: AdmmConfig) -> Self {
        AdmmPruner { cfg }
    }

    /// Runs pattern-set generation, ADMM regularization, final projection
    /// and masked retraining. Returns the pruned-structure description
    /// and the convergence report. The network is modified in place.
    pub fn prune(
        &self,
        net: &mut Sequential,
        data: &Dataset,
        rng: &mut Rng,
    ) -> (PrunedModel, AdmmReport) {
        let weights = conv_weights(net);
        let refs: Vec<&Tensor> = weights.iter().collect();
        let has_3x3 = weights.iter().any(|w| {
            let s = w.shape4();
            s.h == 3 && s.w == 3
        });
        let set = if has_3x3 {
            PatternSet::harvest(&refs, self.cfg.pattern_count)
        } else {
            PatternSet::standard(self.cfg.pattern_count)
        };

        let pattern = PatternConstraint::new(set.clone(), &weights);
        let connectivity = ConnectivityConstraint::from_rate(
            &weights,
            self.cfg.connectivity_rate,
            self.cfg.spare_first_layer,
        );
        let constraints: Vec<&dyn AdmmConstraint> = if self.cfg.connectivity_only {
            vec![&connectivity]
        } else {
            vec![&pattern, &connectivity]
        };
        let solver = AdmmSolver::new(constraints, self.cfg.clone());
        let mut report = solver.run(net, data, rng);

        // Masked mapping: hard projection onto the constraint sets.
        let alphas = connectivity.alphas().to_vec();
        let connectivity_only = self.cfg.connectivity_only;
        let mut layers: Vec<LayerPruning> = Vec::new();
        for_each_conv(net, |l, c| {
            let name = c.name().to_owned();
            let lp = if connectivity_only {
                crate::project::prune_layer_connectivity_only(&name, &mut c.weight.value, alphas[l])
            } else {
                prune_layer(&name, &mut c.weight.value, &set, alphas[l])
            };
            layers.push(lp);
        });

        // Masked retraining restores accuracy without changing structure.
        let masks = masks_from_nonzero(net);
        report.retrain_losses = retrain_masked(
            net,
            data,
            &masks,
            self.cfg.retrain_epochs,
            self.cfg.batch_size,
            self.cfg.lr,
            rng,
        );

        (
            PrunedModel {
                pattern_set: set,
                layers,
            },
            report,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patdnn_nn::models::small_cnn;
    use patdnn_nn::prelude::*;

    fn tiny_setup(rng: &mut Rng) -> (Sequential, Dataset) {
        let data = Dataset::synthetic(3, 12, 3, 8, 8, 0.4, rng);
        let net = small_cnn(3, 8, 3, rng);
        (net, data)
    }

    fn fast_cfg() -> AdmmConfig {
        AdmmConfig {
            pattern_count: 6,
            connectivity_rate: 2.0,
            spare_first_layer: true,
            rho: 1e-2,
            iterations: 2,
            epochs_per_iteration: 1,
            retrain_epochs: 1,
            batch_size: 6,
            lr: 2e-3,
            connectivity_only: false,
        }
    }

    #[test]
    fn pruner_produces_consistent_structure() {
        let mut rng = Rng::seed_from(11);
        let (mut net, data) = tiny_setup(&mut rng);
        let pruner = AdmmPruner::new(fast_cfg());
        let (pruned, report) = pruner.prune(&mut net, &data, &mut rng);

        assert_eq!(pruned.layers.len(), 2, "two conv layers in small_cnn");
        assert_eq!(report.iteration_losses.len(), 2);
        assert_eq!(report.primal_residuals.len(), 2);
        assert_eq!(report.retrain_losses.len(), 1);

        // Every surviving 3x3 kernel has exactly 4 non-zeros on its
        // assigned pattern; pruned kernels are all-zero.
        let mut l = 0;
        net.visit_convs(&mut |c| {
            let lp = &pruned.layers[l];
            for (i, kernel) in c.weight.value.data().chunks_exact(9).enumerate() {
                let nz = kernel.iter().filter(|&&x| x != 0.0).count();
                match lp.kernels[i] {
                    crate::project::KernelStatus::Pruned => assert_eq!(nz, 0),
                    crate::project::KernelStatus::Pattern(id) => {
                        assert!(nz <= 4, "at most 4 non-zeros, got {nz}");
                        let p = pruned.pattern_set.get(id);
                        for (j, &x) in kernel.iter().enumerate() {
                            if x != 0.0 {
                                assert!(p.contains(j / 3, j % 3), "weight off-pattern");
                            }
                        }
                    }
                    crate::project::KernelStatus::Dense => {}
                }
            }
            l += 1;
        });
    }

    #[test]
    fn connectivity_rate_controls_kept_kernels() {
        let mut rng = Rng::seed_from(12);
        let (mut net, data) = tiny_setup(&mut rng);
        let mut cfg = fast_cfg();
        cfg.connectivity_rate = 4.0;
        cfg.spare_first_layer = false;
        let pruner = AdmmPruner::new(cfg);
        let (pruned, _) = pruner.prune(&mut net, &data, &mut rng);
        for lp in &pruned.layers {
            let total = lp.out_c * lp.in_c;
            let expect = alpha_for_rate(total, 4.0);
            assert_eq!(lp.kept_kernels(), expect, "layer {}", lp.name);
        }
    }

    #[test]
    fn spare_first_layer_keeps_more_kernels_there() {
        let mut rng = Rng::seed_from(13);
        let (mut net, data) = tiny_setup(&mut rng);
        let mut cfg = fast_cfg();
        cfg.connectivity_rate = 4.0;
        cfg.spare_first_layer = true;
        let pruner = AdmmPruner::new(cfg);
        let (pruned, _) = pruner.prune(&mut net, &data, &mut rng);
        let first = &pruned.layers[0];
        let total0 = first.out_c * first.in_c;
        assert_eq!(first.kept_kernels(), alpha_for_rate(total0, 2.0));
    }

    #[test]
    fn masked_retraining_preserves_zero_structure() {
        let mut rng = Rng::seed_from(14);
        let (mut net, data) = tiny_setup(&mut rng);
        let pruner = AdmmPruner::new(fast_cfg());
        let (_, _) = pruner.prune(&mut net, &data, &mut rng);
        let before = conv_weights(&mut net);
        // Retrain more with the same masks: zeros must stay zeros.
        let masks = masks_from_nonzero(&mut net);
        retrain_masked(&mut net, &data, &masks, 1, 6, 1e-3, &mut rng);
        let after = conv_weights(&mut net);
        for (b, a) in before.iter().zip(&after) {
            for (&wb, &wa) in b.data().iter().zip(a.data()) {
                if wb == 0.0 {
                    assert_eq!(wa, 0.0, "zero weight resurrected");
                }
            }
        }
    }

    #[test]
    fn admm_residuals_shrink_with_iterations() {
        let mut rng = Rng::seed_from(15);
        let (mut net, data) = tiny_setup(&mut rng);
        // Pre-train briefly so ADMM starts from something sensible.
        let mut opt = Adam::new(2e-3);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 6,
            verbose: false,
        };
        train(&mut net, &data, &mut opt, &cfg, &mut rng);

        let mut acfg = fast_cfg();
        acfg.iterations = 6;
        acfg.epochs_per_iteration = 2;
        acfg.rho = 0.5;
        let weights = conv_weights(&mut net);
        let pattern = PatternConstraint::new(PatternSet::standard(6), &weights);
        let connectivity = ConnectivityConstraint::from_rate(&weights, 2.0, false);
        let solver = AdmmSolver::new(vec![&pattern, &connectivity], acfg);
        let report = solver.run(&mut net, &data, &mut rng);
        // ADMM convergence is asymptotic and the tiny run is noisy; compare
        // the average of the first two residuals with the last two.
        let r = &report.primal_residuals;
        assert_eq!(r.len(), 6);
        let early = (r[0] + r[1]) / 2.0;
        let late = (r[4] + r[5]) / 2.0;
        assert!(
            late < early,
            "residual should shrink: early {early}, late {late} ({r:?})"
        );
    }

    #[test]
    fn sparsity_constraint_keeps_exact_count() {
        let mut rng = Rng::seed_from(16);
        let w = Tensor::randn(&[4, 4, 3, 3], &mut rng);
        let cons = SparsityConstraint::from_rate(std::slice::from_ref(&w), 8.0);
        let mut projected = w.clone();
        cons.project(0, &mut projected);
        assert_eq!(projected.count_nonzero(), w.len() / 8);
        // Kept entries are the largest by magnitude.
        let mut mags: Vec<f32> = w.data().iter().map(|x| x.abs()).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let threshold = mags[w.len() / 8 - 1];
        for (&orig, &proj) in w.data().iter().zip(projected.data()) {
            if proj != 0.0 {
                assert!(orig.abs() >= threshold - 1e-6);
            }
        }
    }
}
