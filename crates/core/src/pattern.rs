//! Kernel patterns: fixed non-zero position masks inside a convolution
//! kernel.
//!
//! The paper's key abstraction (§3.1): each 3×3 kernel keeps exactly four
//! weights forming one of a small set of pre-designed shapes. The centre
//! weight is always kept — "the central weight in a 3×3 kernel is critical
//! and shall not be pruned" (§4.1).

use std::fmt;

/// A fixed non-zero position mask over a square `kernel × kernel` grid.
///
/// Stored as a bitmask in row-major order, bit `r * kernel + c` marking a
/// *kept* position. Supports kernels up to 7×7 (49 bits), covering every
/// kernel size in the paper's models (1×1, 3×3, and ResNet's 7×7 stem).
///
/// # Examples
///
/// ```
/// use patdnn_core::Pattern;
///
/// let p = Pattern::from_positions(3, &[(0, 1), (1, 0), (1, 1), (1, 2)]);
/// assert_eq!(p.entries(), 4);
/// assert!(p.contains(1, 1));
/// assert!(!p.contains(2, 2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pattern {
    kernel: u8,
    mask: u64,
}

impl Pattern {
    /// Builds a pattern from kept `(row, col)` positions.
    ///
    /// # Panics
    ///
    /// Panics if `kernel > 4`, a position repeats, or a position is out
    /// of bounds.
    pub fn from_positions(kernel: usize, positions: &[(usize, usize)]) -> Self {
        assert!(
            (1..=7).contains(&kernel),
            "kernel size {kernel} unsupported"
        );
        let mut mask = 0u64;
        for &(r, c) in positions {
            assert!(r < kernel && c < kernel, "position ({r},{c}) out of bounds");
            let bit = 1u64 << (r * kernel + c);
            assert_eq!(mask & bit, 0, "duplicate position ({r},{c})");
            mask |= bit;
        }
        Pattern {
            kernel: kernel as u8,
            mask,
        }
    }

    /// Builds a pattern directly from a bitmask.
    ///
    /// # Panics
    ///
    /// Panics if bits outside the `kernel²` grid are set.
    pub fn from_mask(kernel: usize, mask: u64) -> Self {
        assert!(
            (1..=7).contains(&kernel),
            "kernel size {kernel} unsupported"
        );
        let valid = if kernel * kernel == 64 {
            u64::MAX
        } else {
            (1u64 << (kernel * kernel)) - 1
        };
        assert_eq!(mask & !valid, 0, "mask has bits outside the kernel");
        Pattern {
            kernel: kernel as u8,
            mask,
        }
    }

    /// The kernel size this pattern applies to.
    pub fn kernel(&self) -> usize {
        self.kernel as usize
    }

    /// The raw bitmask (row-major, bit `r * kernel + c`).
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Number of kept positions.
    pub fn entries(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// Is position `(r, c)` kept?
    pub fn contains(&self, r: usize, c: usize) -> bool {
        r < self.kernel() && c < self.kernel() && self.mask & (1 << (r * self.kernel() + c)) != 0
    }

    /// Kept positions in row-major order.
    pub fn positions(&self) -> Vec<(usize, usize)> {
        let k = self.kernel();
        (0..k * k)
            .filter(|i| self.mask & (1 << i) != 0)
            .map(|i| (i / k, i % k))
            .collect()
    }

    /// Does the pattern keep the central weight (odd kernels only)?
    pub fn includes_center(&self) -> bool {
        let k = self.kernel();
        k % 2 == 1 && self.contains(k / 2, k / 2)
    }

    /// Zeroes all positions outside the pattern in a row-major kernel
    /// slice.
    ///
    /// # Panics
    ///
    /// Panics if `kernel.len() != kernel²`.
    pub fn apply(&self, kernel: &mut [f32]) {
        let k = self.kernel();
        assert_eq!(kernel.len(), k * k, "kernel slice length mismatch");
        for (i, w) in kernel.iter_mut().enumerate() {
            if self.mask & (1 << i) == 0 {
                *w = 0.0;
            }
        }
    }

    /// Sum of squares of the kept entries: the retained energy when this
    /// pattern is applied, used for L2-nearest pattern selection.
    ///
    /// # Panics
    ///
    /// Panics if `kernel.len() != kernel²`.
    pub fn kept_energy(&self, kernel: &[f32]) -> f32 {
        let k = self.kernel();
        assert_eq!(kernel.len(), k * k, "kernel slice length mismatch");
        kernel
            .iter()
            .enumerate()
            .filter(|(i, _)| self.mask & (1 << i) != 0)
            .map(|(_, &w)| w * w)
            .sum()
    }

    /// The *natural pattern* of a 3×3 kernel: the centre plus its three
    /// largest-magnitude neighbours (§4.1 of the paper).
    pub fn natural_of(kernel: &[f32; 9]) -> Pattern {
        let mut neighbours: Vec<usize> = (0..9).filter(|&i| i != 4).collect();
        neighbours.sort_by(|&a, &b| {
            kernel[b]
                .abs()
                .partial_cmp(&kernel[a].abs())
                .expect("finite weights")
                // Deterministic tie-break on index.
                .then(a.cmp(&b))
        });
        let mut mask = 1u64 << 4;
        for &i in neighbours.iter().take(3) {
            mask |= 1 << i;
        }
        Pattern { kernel: 3, mask }
    }

    /// All 56 possible natural patterns: centre + any 3 of the 8
    /// neighbours.
    pub fn all_natural() -> Vec<Pattern> {
        let neighbours: Vec<usize> = (0..9).filter(|&i| i != 4).collect();
        let mut out = Vec::with_capacity(56);
        for a in 0..neighbours.len() {
            for b in a + 1..neighbours.len() {
                for c in b + 1..neighbours.len() {
                    let mask = (1u64 << 4)
                        | (1 << neighbours[a])
                        | (1 << neighbours[b])
                        | (1 << neighbours[c]);
                    out.push(Pattern { kernel: 3, mask });
                }
            }
        }
        out
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Pattern({}x{}, {:#b})",
            self.kernel, self.kernel, self.mask
        )
    }
}

impl fmt::Display for Pattern {
    /// Renders the pattern as a grid of `x` (kept) and `.` (pruned),
    /// matching the paper's Figure 3 illustrations.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = self.kernel();
        for r in 0..k {
            for c in 0..k {
                write!(f, "{}", if self.contains(r, c) { 'x' } else { '.' })?;
            }
            if r + 1 < k {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_pattern_keeps_center_and_top3() {
        let kernel = [0.1, 0.9, 0.2, 0.8, 0.05, 0.3, 0.7, 0.0, 0.0];
        let p = Pattern::natural_of(&kernel);
        assert!(p.contains(1, 1), "centre kept even when small");
        assert!(p.contains(0, 1)); // 0.9
        assert!(p.contains(1, 0)); // 0.8
        assert!(p.contains(2, 0)); // 0.7
        assert_eq!(p.entries(), 4);
    }

    #[test]
    fn natural_pattern_uses_magnitude_not_sign() {
        let kernel = [-0.9, 0.1, 0.1, -0.8, 0.5, 0.1, 0.1, 0.1, -0.7];
        let p = Pattern::natural_of(&kernel);
        assert!(p.contains(0, 0) && p.contains(1, 0) && p.contains(2, 2));
    }

    #[test]
    fn there_are_56_natural_patterns() {
        let all = Pattern::all_natural();
        assert_eq!(all.len(), 56);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 56, "all patterns distinct");
        for p in &all {
            assert_eq!(p.entries(), 4);
            assert!(p.includes_center());
        }
    }

    #[test]
    fn apply_zeroes_complement() {
        let p = Pattern::from_positions(3, &[(0, 0), (1, 1), (2, 2), (0, 2)]);
        let mut kernel = [1.0f32; 9];
        p.apply(&mut kernel);
        assert_eq!(kernel.iter().filter(|&&w| w != 0.0).count(), 4);
        assert_eq!(kernel[0], 1.0);
        assert_eq!(kernel[4], 1.0);
        assert_eq!(kernel[8], 1.0);
        assert_eq!(kernel[2], 1.0);
        assert_eq!(kernel[1], 0.0);
    }

    #[test]
    fn kept_energy_sums_squares() {
        let p = Pattern::from_positions(2, &[(0, 0), (1, 1)]);
        let kernel = [3.0, 5.0, 7.0, 4.0];
        assert_eq!(p.kept_energy(&kernel), 9.0 + 16.0);
    }

    #[test]
    fn natural_is_the_energy_maximizing_pattern() {
        // Among all 56 candidates, the natural pattern retains maximal L2.
        let kernel = [0.3, -0.9, 0.15, 0.01, 0.2, 0.85, -0.4, 0.0, 0.05];
        let natural = Pattern::natural_of(&kernel);
        let best = Pattern::all_natural()
            .into_iter()
            .max_by(|a, b| {
                a.kept_energy(&kernel)
                    .partial_cmp(&b.kept_energy(&kernel))
                    .expect("finite")
            })
            .expect("non-empty");
        assert_eq!(natural, best);
    }

    #[test]
    fn display_draws_grid() {
        let p = Pattern::from_positions(3, &[(0, 0), (1, 1)]);
        assert_eq!(p.to_string(), "x..\n.x.\n...");
    }

    #[test]
    #[should_panic(expected = "duplicate position")]
    fn duplicate_position_panics() {
        Pattern::from_positions(3, &[(0, 0), (0, 0)]);
    }

    #[test]
    fn mask_round_trip() {
        for p in Pattern::all_natural() {
            let q = Pattern::from_mask(3, p.mask());
            assert_eq!(p, q);
        }
    }
}
