//! # patdnn-runtime
//!
//! The execution substrate of the PatDNN reproduction: everything that
//! runs convolutions and measures them.
//!
//! - [`executor`] — the [`executor::ConvExecutor`] trait plus timing
//!   helpers.
//! - [`dense`] — dense baselines mirroring the frameworks of the paper's
//!   evaluation: a naive loop nest (TFLite-like), im2col+GEMM (TVM-like),
//!   Winograd (MNN-like), and PatDNN's own tiled dense kernel.
//! - [`sparse_csr`] — CSR sparse convolution, the "almost no speedup"
//!   baseline of §6.2.
//! - [`pattern_exec`] — the pattern-based executors over FKW storage at
//!   the four optimization levels of Figure 13 (`No-opt`, `+Reorder`,
//!   `+LRE`, `+Tune`).
//! - [`parallel`] — multi-threaded layer execution with FKR-aware load
//!   balancing (8 threads in the paper's runs).
//! - [`gpu`] — a simulated mobile GPU (thread blocks, warps, divergence
//!   and load-imbalance modelling) substituting for the Adreno 640; see
//!   DESIGN.md §2.
//! - [`platform`] — mobile platform descriptors (Snapdragon 855/845,
//!   Kirin 980) for the portability study (Figure 18).
//! - [`counters`] — FLOP/GFLOPS accounting and register-load counting.

pub mod counters;
pub mod dense;
pub mod executor;
pub mod gpu;
pub mod parallel;
pub mod pattern_exec;
pub mod platform;
pub mod quant_exec;
pub mod sparse_csr;

pub use executor::ConvExecutor;
pub use pattern_exec::{OptLevel, PatternConv};
pub use platform::Platform;
pub use quant_exec::QuantPatternConv;
