//! INT8 pattern-based convolution executor over quantized FKW storage.
//!
//! [`QuantPatternConv`] is the reduced-precision counterpart of
//! [`crate::pattern_exec::PatternConv`]: it traverses the *same* FKW
//! arrays (reorder, per-pattern kernel runs, per-kernel channel index)
//! but computes with exact `i8 × i8 → i32` arithmetic:
//!
//! 1. the input planes are quantized once per item with the layer's
//!    calibrated activation scale (persisted in the artifact),
//! 2. every stored kernel accumulates into an `i32` plane — borrow-free
//!    inside the pixel loops, with the same 4-wide LRE fast path as the
//!    `f32` executor, reading 1-byte instead of 4-byte activations,
//! 3. each filter plane dequantizes with a single multiply
//!    (`act_scale · filter_scale`) and the `f32` bias is added last.
//!
//! The executor honors the step's persisted [`OptLevel`] and
//! [`TuningConfig`] the same way the `f32` one does: the LRE fast path
//! is gated on the opt level, and `Full` adds `unroll_oc`-row
//! filter-level chunking so kernels sharing a pattern run reuse
//! register-resident input spans across adjacent filters.

use std::sync::Mutex;

use patdnn_compiler::quant::{quantize_slice_into, QuantFkwLayer};
use patdnn_compiler::tune::space::TuningConfig;
use patdnn_tensor::kernels;
use patdnn_tensor::{Conv2dGeometry, Tensor};

use crate::executor::ConvExecutor;
use crate::pattern_exec::OptLevel;

/// Per-call scratch of the INT8 executor: the quantized input image and
/// the `i32` accumulation planes. Pooled so a warm executor allocates
/// nothing on the steady-state path.
struct QuantScratch {
    qin: Vec<i8>,
    acc: Vec<i32>,
}

/// Whether worst-case `i8 × i8 → i32` accumulation over `in_c` kernels
/// of `entries` taps each fits `i32`. Callers that build executors from
/// external artifacts must check this *before* construction (the
/// serving layer turns it into a typed malformed-artifact error at
/// decode and engine build); [`QuantPatternConv::new`] asserts it.
pub fn accumulation_fits_i32(in_c: usize, entries_per_kernel: usize) -> bool {
    in_c as i64 * entries_per_kernel as i64 * 127 * 127 <= i32::MAX as i64
}

/// INT8 pattern-based sparse convolution executor.
pub struct QuantPatternConv {
    geo: Conv2dGeometry,
    qfkw: QuantFkwLayer,
    bias: Option<Vec<f32>>,
    level: OptLevel,
    tuning: TuningConfig,
    /// `(kh, kw)` taps per pattern, pre-decoded for the inner loops.
    taps: Vec<Vec<(usize, usize)>>,
    entries: usize,
    /// `(row, original_filter)` pairs, pre-collected for the chunked
    /// `Full`-level traversal.
    rows: Vec<(usize, usize)>,
    /// Filters with no stored kernels (their planes are bias-only).
    unstored: Vec<usize>,
    /// Pool of reusable scratch sets; concurrent callers each check out
    /// their own, so `run_into(&self)` stays freely shareable.
    // lock: rt-quant-scratch
    scratch: Mutex<Vec<QuantScratch>>,
}

impl QuantPatternConv {
    /// Creates the executor.
    ///
    /// # Panics
    ///
    /// Panics if the quantized FKW layer disagrees with the geometry or
    /// if [`accumulation_fits_i32`] does not hold (impossible for
    /// realistic layer widths; validated with typed errors upstream so
    /// the kernel stays branch-free).
    pub fn new(
        geo: Conv2dGeometry,
        qfkw: QuantFkwLayer,
        bias: Option<Vec<f32>>,
        level: OptLevel,
        tuning: TuningConfig,
    ) -> Self {
        assert_eq!(qfkw.out_c, geo.out_channels, "filter count mismatch");
        assert_eq!(qfkw.in_c, geo.in_channels, "channel count mismatch");
        assert_eq!(qfkw.kernel, geo.kernel_h, "kernel size mismatch");
        // Worst case per output pixel: every input channel contributes a
        // kernel of `entries` saturated (±127 · ±127) products.
        assert!(
            accumulation_fits_i32(qfkw.in_c, qfkw.entries_per_kernel),
            "i8 accumulation would overflow"
        );
        let taps = qfkw.patterns.iter().map(|p| p.positions()).collect();
        let entries = qfkw.entries_per_kernel;
        let rows: Vec<(usize, usize)> = qfkw.rows().collect();
        let mut stored = vec![false; geo.out_channels];
        for &(_, f) in &rows {
            stored[f] = true;
        }
        let unstored = stored
            .iter()
            .enumerate()
            .filter(|(_, &s)| !s)
            .map(|(f, _)| f)
            .collect();
        QuantPatternConv {
            geo,
            qfkw,
            bias,
            level,
            tuning,
            taps,
            entries,
            rows,
            unstored,
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// The quantized FKW storage backing this executor.
    pub fn qfkw(&self) -> &QuantFkwLayer {
        &self.qfkw
    }

    /// The calibrated input-activation scale.
    pub fn act_scale(&self) -> f32 {
        self.qfkw.act_scale
    }

    /// Accumulates one kernel over the whole output plane with per-pixel
    /// bounds checks (borders, and the whole plane for stride > 1).
    fn kernel_plane_checked(&self, taps: &[(usize, usize)], w: &[i8], inp: &[i8], acc: &mut [i32]) {
        let g = &self.geo;
        for oh in 0..g.out_h {
            let orow = oh * g.out_w;
            for ow in 0..g.out_w {
                let mut sum = 0i32;
                for (e, &(kh, kw)) in taps.iter().enumerate() {
                    let ih = (oh * g.stride + kh) as isize - g.pad as isize;
                    let iw = (ow * g.stride + kw) as isize - g.pad as isize;
                    if ih >= 0 && ih < g.in_h as isize && iw >= 0 && iw < g.in_w as isize {
                        sum += w[e] as i32 * inp[ih as usize * g.in_w + iw as usize] as i32;
                    }
                }
                acc[orow + ow] += sum;
            }
        }
    }

    /// Accumulates one kernel with the LRE fast path (stride 1): per
    /// tap, each output row reduces to one contiguous span-accumulate
    /// `acc[lo..hi] += w · input[lo'..hi']` with the tap weight hoisted
    /// into a register — no per-pixel bounds checks. The span runs
    /// through the dispatched [`kernels`] `axpy_i8` tile (8-lane
    /// sign-extended i32 math on AVX2, portable loop otherwise); integer
    /// accumulation is order-independent, so both variants are
    /// bit-identical.
    fn kernel_plane_lre(&self, taps: &[(usize, usize)], w: &[i8], inp: &[i8], acc: &mut [i32]) {
        let g = &self.geo;
        debug_assert_eq!(g.stride, 1, "LRE fast path requires stride 1");
        let kernel = kernels::active_kernel();
        for (e, &(kh, kw)) in taps.iter().enumerate() {
            let wv = w[e] as i32;
            // Valid output columns for this tap: `ow + kw - pad` in
            // `[0, in_w)`; everything outside reads implicit zero pad.
            let lo = g.pad.saturating_sub(kw);
            let hi = (g.in_w + g.pad - kw).min(g.out_w);
            if lo >= hi {
                continue;
            }
            for oh in 0..g.out_h {
                let ih = oh + kh;
                if ih < g.pad || ih - g.pad >= g.in_h {
                    continue;
                }
                let ibase = (ih - g.pad) * g.in_w + lo + kw - g.pad;
                let orow = oh * g.out_w;
                kernel.axpy_i8(
                    wv,
                    &inp[ibase..ibase + hi - lo],
                    &mut acc[orow + lo..orow + hi],
                );
            }
        }
    }

    /// Accumulates every kernel of one storage row into `acc`.
    fn accumulate_row(&self, row: usize, qin: &[i8], acc: &mut [i32], lre_ok: bool) {
        let g = &self.geo;
        let in_hw = g.in_h * g.in_w;
        for p in 0..self.qfkw.patterns.len() {
            let taps = &self.taps[p];
            for k in self.qfkw.pattern_run(row, p) {
                let ic = self.qfkw.index[k] as usize;
                let w = &self.qfkw.qweights[k * self.entries..(k + 1) * self.entries];
                let in_plane = &qin[ic * in_hw..(ic + 1) * in_hw];
                if lre_ok {
                    self.kernel_plane_lre(taps, w, in_plane, acc);
                } else {
                    self.kernel_plane_checked(taps, w, in_plane, acc);
                }
            }
        }
    }

    /// Dequantizes one accumulated filter plane into the output.
    fn writeback(&self, f: usize, acc: &[i32], out_plane: &mut [f32]) {
        let s = self.qfkw.act_scale * self.qfkw.scales[f];
        let b = self.bias.as_ref().map_or(0.0, |b| b[f]);
        for (o, &a) in out_plane.iter_mut().zip(acc) {
            *o = a as f32 * s + b;
        }
    }

    fn run_batch_item(&self, qin: &[i8], out: &mut [f32], acc: &mut [i32]) {
        let g = &self.geo;
        let out_hw = g.out_h * g.out_w;
        let lre_ok =
            g.stride == 1 && self.level != OptLevel::NoOpt && self.level != OptLevel::Reorder;
        if self.level == OptLevel::Full {
            // Filter-level LRE: unroll_oc adjacent rows interleave their
            // pattern runs so shared input spans stay register-resident.
            let uoc = self.tuning.unroll_oc.max(1);
            for chunk in self.rows.chunks(uoc) {
                let acc = &mut acc[..chunk.len() * out_hw];
                acc.fill(0);
                for p in 0..self.qfkw.patterns.len() {
                    let taps = &self.taps[p];
                    for (j, &(row, _)) in chunk.iter().enumerate() {
                        let plane = &mut acc[j * out_hw..(j + 1) * out_hw];
                        for k in self.qfkw.pattern_run(row, p) {
                            let ic = self.qfkw.index[k] as usize;
                            let w = &self.qfkw.qweights[k * self.entries..(k + 1) * self.entries];
                            let in_plane = &qin[ic * g.in_h * g.in_w..(ic + 1) * g.in_h * g.in_w];
                            if lre_ok {
                                self.kernel_plane_lre(taps, w, in_plane, plane);
                            } else {
                                self.kernel_plane_checked(taps, w, in_plane, plane);
                            }
                        }
                    }
                }
                for (j, &(_, f)) in chunk.iter().enumerate() {
                    self.writeback(
                        f,
                        &acc[j * out_hw..(j + 1) * out_hw],
                        &mut out[f * out_hw..(f + 1) * out_hw],
                    );
                }
            }
        } else {
            for &(row, f) in &self.rows {
                let acc = &mut acc[..out_hw];
                acc.fill(0);
                self.accumulate_row(row, qin, acc, lre_ok);
                self.writeback(f, acc, &mut out[f * out_hw..(f + 1) * out_hw]);
            }
        }
        // Filters with no stored kernels never accumulate; their planes
        // still need the bias (matching the f32 executor's init).
        for &f in &self.unstored {
            let b = self.bias.as_ref().map_or(0.0, |b| b[f]);
            out[f * out_hw..(f + 1) * out_hw].fill(b);
        }
    }

    /// Runs the layer into a caller-provided output tensor (the serving
    /// engine's buffer-reuse path). The `f32` input is quantized once per
    /// batch item with the persisted activation scale.
    ///
    /// # Panics
    ///
    /// Panics if `out` does not have the batch-matched output shape.
    pub fn run_into(&self, input: &Tensor, out: &mut Tensor) {
        let g = &self.geo;
        let s = input.shape4();
        assert_eq!(s.c, g.in_channels, "input channel mismatch");
        assert_eq!(
            out.shape(),
            &[s.n, g.out_channels, g.out_h, g.out_w],
            "output buffer shape mismatch"
        );
        let in_img = g.in_channels * g.in_h * g.in_w;
        let out_img = g.out_channels * g.out_h * g.out_w;
        let acc_planes = if self.level == OptLevel::Full {
            self.tuning.unroll_oc.max(1)
        } else {
            1
        };
        // Check a scratch set out of the pool (sizes are fixed per
        // executor, so a reused set never reallocates: the warm serving
        // path stays allocation-free).
        let mut scratch = self
            .scratch
            .lock()
            .expect("quant scratch pool")
            .pop()
            .unwrap_or(QuantScratch {
                qin: Vec::new(),
                acc: Vec::new(),
            });
        scratch.qin.resize(in_img, 0);
        scratch.acc.resize(acc_planes * g.out_h * g.out_w, 0);
        for n in 0..s.n {
            let ind = &input.data()[n * in_img..(n + 1) * in_img];
            quantize_slice_into(ind, self.qfkw.act_scale, &mut scratch.qin);
            self.run_batch_item(
                &scratch.qin,
                &mut out.data_mut()[n * out_img..(n + 1) * out_img],
                &mut scratch.acc,
            );
        }
        self.scratch
            .lock()
            .expect("quant scratch pool")
            .push(scratch);
    }
}

impl ConvExecutor for QuantPatternConv {
    fn name(&self) -> &str {
        "pattern-int8"
    }

    fn geometry(&self) -> &Conv2dGeometry {
        &self.geo
    }

    fn run(&self, input: &Tensor) -> Tensor {
        let g = &self.geo;
        let s = input.shape4();
        let mut out = Tensor::zeros(&[s.n, g.out_channels, g.out_h, g.out_w]);
        self.run_into(input, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern_exec::PatternConv;
    use patdnn_compiler::fkr::filter_kernel_reorder;
    use patdnn_compiler::fkw::FkwLayer;
    use patdnn_compiler::quant::{max_abs, quantize_slice};
    use patdnn_core::pattern_set::PatternSet;
    use patdnn_core::project::prune_layer;
    use patdnn_tensor::rng::Rng;

    fn pruned_fkw(oc: usize, ic: usize, alpha: usize, seed: u64) -> FkwLayer {
        let mut rng = Rng::seed_from(seed);
        let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("t", &mut w, &set, alpha);
        let order = filter_kernel_reorder(&lp);
        FkwLayer::from_pruned(&w, &lp, &set, &order)
    }

    /// The INT8 computation is exact in i32, so running the f32 executor
    /// over the *dequantized* weights and the *requantized* input must
    /// reproduce the quantized output to f32 rounding.
    #[test]
    fn int8_matches_f32_over_dequantized_operands_at_every_level() {
        let geo = Conv2dGeometry::new(8, 6, 3, 3, 11, 11, 1, 1);
        let fkw = pruned_fkw(8, 6, 20, 1);
        let mut rng = Rng::seed_from(2);
        let x = Tensor::randn(&[2, 6, 11, 11], &mut rng);
        let bias: Vec<f32> = (0..8).map(|_| rng.uniform(-0.5, 0.5)).collect();
        let qfkw = QuantFkwLayer::from_fkw(&fkw, max_abs(x.data()));

        // Requantize the input exactly as the executor does.
        let sx = qfkw.act_scale;
        let qx = quantize_slice(x.data(), sx);
        let x_deq = Tensor::from_vec(x.shape(), qx.iter().map(|&q| q as f32 * sx).collect())
            .expect("dequantized input");

        for level in OptLevel::all() {
            let quant = QuantPatternConv::new(
                geo,
                qfkw.clone(),
                Some(bias.clone()),
                level,
                TuningConfig::tuned_default(),
            );
            let reference = PatternConv::new(
                geo,
                qfkw.to_fkw(),
                Some(bias.clone()),
                level,
                TuningConfig::tuned_default(),
            );
            let got = quant.run(&x);
            let want = reference.run(&x_deq);
            assert!(
                want.approx_eq(&got, 1e-3),
                "{}: int8 diverges from its own dequantized reference: {:?}",
                level.label(),
                want.max_abs_diff(&got)
            );
        }
    }

    #[test]
    fn int8_stays_close_to_the_unquantized_layer() {
        let geo = Conv2dGeometry::new(8, 8, 3, 3, 12, 12, 1, 1);
        let fkw = pruned_fkw(8, 8, 32, 3);
        let mut rng = Rng::seed_from(4);
        let x = Tensor::randn(&[1, 8, 12, 12], &mut rng);
        let qfkw = QuantFkwLayer::from_fkw(&fkw, max_abs(x.data()));
        let quant = QuantPatternConv::new(
            geo,
            qfkw,
            None,
            OptLevel::Full,
            TuningConfig::tuned_default(),
        );
        let full = PatternConv::new(
            geo,
            fkw,
            None,
            OptLevel::Full,
            TuningConfig::tuned_default(),
        );
        let got = quant.run(&x);
        let want = full.run(&x);
        let scale = max_abs(want.data());
        let dev = want.max_abs_diff(&got).expect("same shape");
        assert!(
            dev <= 0.05 * scale.max(1.0),
            "quantization error too large: {dev} vs output scale {scale}"
        );
    }

    #[test]
    fn strided_int8_layer_matches_dequantized_reference() {
        let geo = Conv2dGeometry::new(4, 4, 3, 3, 9, 9, 2, 1);
        let fkw = pruned_fkw(4, 4, 8, 5);
        let mut rng = Rng::seed_from(6);
        let x = Tensor::randn(&[1, 4, 9, 9], &mut rng);
        let qfkw = QuantFkwLayer::from_fkw(&fkw, max_abs(x.data()));
        let sx = qfkw.act_scale;
        let x_deq = Tensor::from_vec(
            x.shape(),
            quantize_slice(x.data(), sx)
                .iter()
                .map(|&q| q as f32 * sx)
                .collect(),
        )
        .expect("dequantized input");
        let quant = QuantPatternConv::new(
            geo,
            qfkw.clone(),
            None,
            OptLevel::Full,
            TuningConfig::tuned_default(),
        );
        let reference = PatternConv::new(
            geo,
            qfkw.to_fkw(),
            None,
            OptLevel::Full,
            TuningConfig::tuned_default(),
        );
        assert!(reference.run(&x_deq).approx_eq(&quant.run(&x), 1e-3));
    }

    #[test]
    fn batched_int8_matches_itemwise_runs() {
        let geo = Conv2dGeometry::new(4, 4, 3, 3, 8, 8, 1, 1);
        let fkw = pruned_fkw(4, 4, 10, 7);
        let mut rng = Rng::seed_from(8);
        let a = Tensor::randn(&[1, 4, 8, 8], &mut rng);
        let b = Tensor::randn(&[1, 4, 8, 8], &mut rng);
        let qfkw = QuantFkwLayer::from_fkw(&fkw, max_abs(a.data()).max(max_abs(b.data())));
        let exec = QuantPatternConv::new(
            geo,
            qfkw,
            None,
            OptLevel::Full,
            TuningConfig::tuned_default(),
        );
        let mut both = Tensor::zeros(&[2, 4, 8, 8]);
        both.data_mut()[..a.len()].copy_from_slice(a.data());
        both.data_mut()[a.len()..].copy_from_slice(b.data());
        let out_a = exec.run(&a);
        let out_b = exec.run(&b);
        let out = exec.run(&both);
        assert_eq!(&out.data()[..out_a.len()], out_a.data());
        assert_eq!(&out.data()[out_a.len()..], out_b.data());
    }

    #[test]
    fn connectivity_only_1x1_int8_matches_dequantized_reference() {
        let mut rng = Rng::seed_from(10);
        let mut w = Tensor::randn(&[8, 8, 1, 1], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("proj", &mut w, &set, 16);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        let geo = Conv2dGeometry::new(8, 8, 1, 1, 7, 7, 1, 0);
        let x = Tensor::randn(&[1, 8, 7, 7], &mut rng);
        let qfkw = QuantFkwLayer::from_fkw(&fkw, max_abs(x.data()));
        let sx = qfkw.act_scale;
        let x_deq = Tensor::from_vec(
            x.shape(),
            quantize_slice(x.data(), sx)
                .iter()
                .map(|&q| q as f32 * sx)
                .collect(),
        )
        .expect("dequantized input");
        let quant = QuantPatternConv::new(
            geo,
            qfkw.clone(),
            None,
            OptLevel::Full,
            TuningConfig::tuned_default(),
        );
        let reference = PatternConv::new(
            geo,
            qfkw.to_fkw(),
            None,
            OptLevel::Full,
            TuningConfig::tuned_default(),
        );
        assert!(reference.run(&x_deq).approx_eq(&quant.run(&x), 1e-3));
    }
}
