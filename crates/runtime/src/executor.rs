//! The executor abstraction and timing helpers.

use std::time::{Duration, Instant};

use patdnn_tensor::{Conv2dGeometry, Tensor};

/// Anything that can execute one convolution layer on a batch-1 NCHW
/// input.
pub trait ConvExecutor {
    /// Executor name for reports (e.g. `dense-winograd`, `pattern-full`).
    fn name(&self) -> &str;

    /// The layer geometry this executor was built for.
    fn geometry(&self) -> &Conv2dGeometry;

    /// Runs the layer.
    ///
    /// # Panics
    ///
    /// Implementations panic if `input` disagrees with the geometry.
    fn run(&self, input: &Tensor) -> Tensor;
}

/// Wall-clock measurement of repeated executions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Mean seconds per run.
    pub seconds: f64,
    /// Achieved GFLOPS relative to the *dense* FLOP count of the layer
    /// (the paper reports dense-equivalent GFLOPS in Figure 17).
    pub dense_gflops: f64,
}

/// Times `exec` over `reps` runs after one warm-up run.
///
/// `dense_gflops` accounts for the whole batch: a batch-N input performs
/// N times the per-image dense FLOPs of the layer geometry.
pub fn measure(exec: &dyn ConvExecutor, input: &Tensor, reps: usize) -> Measurement {
    assert!(reps > 0, "need at least one repetition");
    let _warmup = exec.run(input);
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(exec.run(input));
    }
    let seconds = start.elapsed().as_secs_f64() / reps as f64;
    let batch = input.shape4().n.max(1);
    let flops = exec.geometry().flops() as f64 * batch as f64;
    Measurement {
        seconds,
        dense_gflops: flops / seconds / 1e9,
    }
}

/// Dense-equivalent GFLOP/s for `flops` of work finished in `wall`
/// time — the single conversion every profiling consumer (engine step
/// hooks, serving telemetry, bench reports) shares. Sub-resolution
/// walls report 0.0 rather than a division-by-zero spike.
pub fn effective_gflops(flops: f64, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        flops / secs / 1e9
    } else {
        0.0
    }
}

/// A started wall-clock timer for one executor or plan-step run: the
/// scoped form of [`measure`] for callers timing real traffic instead
/// of repeated benchmark runs.
#[derive(Debug)]
pub struct StepClock {
    started: Instant,
}

impl StepClock {
    /// Starts timing now.
    pub fn start() -> Self {
        StepClock {
            started: Instant::now(),
        }
    }

    /// When the clock started.
    pub fn started(&self) -> Instant {
        self.started
    }

    /// Elapsed wall time since start.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Stops the clock: `(start instant, wall time)`.
    pub fn stop(self) -> (Instant, Duration) {
        (self.started, self.started.elapsed())
    }
}

/// Asserts that an executor matches the reference convolution on a random
/// input (used pervasively in tests).
pub fn assert_matches_reference(
    exec: &dyn ConvExecutor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    tol: f32,
    seed: u64,
) {
    let geo = exec.geometry();
    let mut rng = patdnn_tensor::rng::Rng::seed_from(seed);
    let input = Tensor::randn(&[1, geo.in_channels, geo.in_h, geo.in_w], &mut rng);
    let expect = patdnn_tensor::conv2d_ref(&input, weights, bias, geo);
    let got = exec.run(&input);
    assert!(
        expect.approx_eq(&got, tol),
        "{} diverges from reference: max diff {:?}",
        exec.name(),
        expect.max_abs_diff(&got)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Copycat {
        geo: Conv2dGeometry,
    }

    impl ConvExecutor for Copycat {
        fn name(&self) -> &str {
            "copycat"
        }
        fn geometry(&self) -> &Conv2dGeometry {
            &self.geo
        }
        fn run(&self, input: &Tensor) -> Tensor {
            input.clone()
        }
    }

    #[test]
    fn measure_reports_positive_time() {
        let geo = Conv2dGeometry::new(1, 1, 1, 1, 4, 4, 1, 0);
        let exec = Copycat { geo };
        let input = Tensor::zeros(&[1, 1, 4, 4]);
        let m = measure(&exec, &input, 3);
        assert!(m.seconds > 0.0);
        assert!(m.dense_gflops > 0.0);
    }

    #[test]
    fn effective_gflops_matches_hand_arithmetic() {
        // 2e9 FLOPs in 1s is 2 GFLOP/s; zero wall degrades to 0.0.
        assert!((effective_gflops(2e9, Duration::from_secs(1)) - 2.0).abs() < 1e-12);
        assert!((effective_gflops(1e9, Duration::from_millis(500)) - 2.0).abs() < 1e-12);
        assert_eq!(effective_gflops(1e9, Duration::ZERO), 0.0);
    }

    #[test]
    fn step_clock_reports_monotone_wall_time() {
        let clock = StepClock::start();
        let t0 = clock.started();
        std::hint::black_box((0..1000).sum::<u64>());
        let early = clock.elapsed();
        let (started, wall) = clock.stop();
        assert_eq!(started, t0);
        assert!(wall >= early);
    }

    #[test]
    fn measure_scales_flops_with_batch_size() {
        // A sleep-free no-op executor: batch-4 must report 4x the work of
        // batch-1 per unit time, so with (near-)identical timing the
        // GFLOPS figure scales with the batch.
        let geo = Conv2dGeometry::new(2, 2, 3, 3, 8, 8, 1, 1);
        let exec = Copycat { geo };
        let one = Tensor::zeros(&[1, 2, 8, 8]);
        let four = Tensor::zeros(&[4, 2, 8, 8]);
        let m1 = measure(&exec, &one, 2);
        let m4 = measure(&exec, &four, 2);
        let work1 = m1.dense_gflops * m1.seconds;
        let work4 = m4.dense_gflops * m4.seconds;
        assert!(
            (work4 / work1 - 4.0).abs() < 1e-9,
            "batch-4 work {work4} should be 4x batch-1 work {work1}"
        );
    }
}
