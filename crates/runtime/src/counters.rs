//! FLOP accounting and register-load counting.

use patdnn_compiler::lre::{register_loads, LoadCounts, LreLevel};
use patdnn_tensor::Conv2dGeometry;

use crate::executor::ConvExecutor;
use crate::pattern_exec::{OptLevel, PatternConv};

/// Dense-equivalent GFLOPS for a measured time.
pub fn dense_gflops(geo: &Conv2dGeometry, seconds: f64) -> f64 {
    geo.flops() as f64 / seconds / 1e9
}

/// Actual (post-pruning) GFLOPS for a measured time.
pub fn sparse_gflops(exec: &PatternConv, seconds: f64) -> f64 {
    let actual = exec.fkw().stored_kernels()
        * exec.fkw().entries_per_kernel
        * 2
        * exec.geometry().out_h
        * exec.geometry().out_w;
    actual as f64 / seconds / 1e9
}

/// Register load counts for a pattern executor at a given optimization
/// level (the Figure 14b quantity).
pub fn pattern_register_loads(exec: &PatternConv, level: OptLevel) -> LoadCounts {
    let (lre, unroll_w, unroll_oc) = match level {
        OptLevel::NoOpt | OptLevel::Reorder => (LreLevel::None, 1, 1),
        OptLevel::ReorderLre => (LreLevel::KernelFilter, 4, 1),
        OptLevel::Full => (LreLevel::KernelFilter, 4, 4),
    };
    register_loads(exec.geometry(), exec.fkw(), unroll_w, unroll_oc, lre)
}

/// Fraction of a pattern execution bound by the memory path, estimated
/// from load counts vs MACs (used by [`crate::platform::Platform`]
/// scaling).
pub fn load_bound_fraction(exec: &PatternConv, level: OptLevel) -> f64 {
    let loads = pattern_register_loads(exec, level).total() as f64;
    let macs = (exec.fkw().stored_kernels()
        * exec.fkw().entries_per_kernel
        * exec.geometry().out_h
        * exec.geometry().out_w) as f64;
    (loads / (loads + macs)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use patdnn_compiler::fkr::filter_kernel_reorder;
    use patdnn_compiler::fkw::FkwLayer;
    use patdnn_compiler::tune::space::TuningConfig;
    use patdnn_core::pattern_set::PatternSet;
    use patdnn_core::project::prune_layer;
    use patdnn_tensor::rng::Rng;
    use patdnn_tensor::Tensor;

    fn exec() -> PatternConv {
        let mut rng = Rng::seed_from(1);
        let geo = Conv2dGeometry::new(8, 8, 3, 3, 12, 12, 1, 1);
        let mut w = Tensor::randn(&[8, 8, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("t", &mut w, &set, 24);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        PatternConv::new(
            geo,
            fkw,
            None,
            OptLevel::Full,
            TuningConfig::tuned_default(),
        )
    }

    #[test]
    fn gflops_is_inverse_in_time() {
        let geo = Conv2dGeometry::new(8, 8, 3, 3, 12, 12, 1, 1);
        let fast = dense_gflops(&geo, 0.001);
        let slow = dense_gflops(&geo, 0.002);
        assert!((fast / slow - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lre_levels_reduce_counted_loads() {
        let e = exec();
        let none = pattern_register_loads(&e, OptLevel::NoOpt);
        let lre = pattern_register_loads(&e, OptLevel::ReorderLre);
        let full = pattern_register_loads(&e, OptLevel::Full);
        assert!(lre.input_loads < none.input_loads);
        assert!(full.input_loads <= lre.input_loads);
    }

    #[test]
    fn load_fraction_is_a_fraction() {
        let e = exec();
        for level in OptLevel::all() {
            let f = load_bound_fraction(&e, level);
            assert!((0.0..=1.0).contains(&f), "fraction {f}");
        }
        // Eliminating loads lowers the load-bound share.
        assert!(load_bound_fraction(&e, OptLevel::Full) < load_bound_fraction(&e, OptLevel::NoOpt));
    }

    #[test]
    fn sparse_gflops_below_dense_equivalent() {
        let e = exec();
        // At the same measured time, the pruned layer retires fewer real
        // FLOPs than the dense-equivalent figure.
        assert!(sparse_gflops(&e, 0.001) < dense_gflops(e.geometry(), 0.001));
    }
}
