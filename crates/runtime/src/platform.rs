//! Mobile platform descriptors for the portability study (Figure 18).
//!
//! The paper measures on a Samsung Galaxy S10 (Snapdragon 855), a Xiaomi
//! POCOPHONE F1 (Snapdragon 845), and an Honor Magic 2 (Kirin 980). We
//! model each as a CPU scaling profile plus a GPU cost model; CPU times
//! measured on the host are scaled by the platform's relative
//! throughput, while GPU times come from the simulator directly.

use crate::gpu::GpuModel;

/// A mobile SoC execution profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Platform name as the paper writes it.
    pub name: String,
    /// Big-core count used for inference (the paper uses 8 threads).
    pub cpu_threads: usize,
    /// CPU throughput relative to the Snapdragon 855 (1.0).
    pub cpu_relative: f64,
    /// Memory bandwidth relative to the Snapdragon 855; load-bound
    /// executions scale with this.
    pub mem_relative: f64,
    /// The GPU model.
    pub gpu: GpuModel,
}

impl Platform {
    /// Snapdragon 855 (Kryo 485 + Adreno 640) — the primary device.
    pub fn snapdragon_855() -> Self {
        Platform {
            name: "Snapdragon 855".into(),
            cpu_threads: 8,
            cpu_relative: 1.0,
            mem_relative: 1.0,
            gpu: GpuModel::adreno_640(),
        }
    }

    /// Snapdragon 845 (Kryo 385 + Adreno 630).
    pub fn snapdragon_845() -> Self {
        Platform {
            name: "Snapdragon 845".into(),
            cpu_threads: 8,
            cpu_relative: 0.78,
            mem_relative: 0.85,
            gpu: GpuModel::adreno_630(),
        }
    }

    /// Kirin 980 (ARM Cortex-A76 + Mali-G76).
    pub fn kirin_980() -> Self {
        Platform {
            name: "Kirin 980".into(),
            cpu_threads: 8,
            cpu_relative: 0.92,
            mem_relative: 0.70,
            gpu: GpuModel::mali_g76(),
        }
    }

    /// All three platforms of the paper.
    pub fn all() -> Vec<Platform> {
        vec![
            Platform::snapdragon_855(),
            Platform::snapdragon_845(),
            Platform::kirin_980(),
        ]
    }

    /// Scales a host-measured CPU time to this platform.
    ///
    /// `load_bound_fraction` is the share of execution limited by the
    /// memory path (0.0 = pure compute). PatDNN's reduced memory traffic
    /// gives it a smaller fraction than dense frameworks, reproducing the
    /// paper's stability observation on the Kirin 980.
    pub fn scale_cpu_seconds(&self, host_seconds: f64, load_bound_fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&load_bound_fraction),
            "fraction must be in [0, 1]"
        );
        let compute = host_seconds * (1.0 - load_bound_fraction) / self.cpu_relative;
        let memory = host_seconds * load_bound_fraction / self.mem_relative;
        compute + memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flagship_is_fastest() {
        let s855 = Platform::snapdragon_855();
        for p in [Platform::snapdragon_845(), Platform::kirin_980()] {
            assert!(
                p.scale_cpu_seconds(1.0, 0.3) > s855.scale_cpu_seconds(1.0, 0.3),
                "{} should be slower than the 855",
                p.name
            );
        }
    }

    #[test]
    fn load_bound_work_suffers_more_on_kirin() {
        let kirin = Platform::kirin_980();
        let compute_bound = kirin.scale_cpu_seconds(1.0, 0.1);
        let load_bound = kirin.scale_cpu_seconds(1.0, 0.7);
        assert!(load_bound > compute_bound);
    }

    #[test]
    fn identity_scaling_on_reference_platform() {
        let s855 = Platform::snapdragon_855();
        assert!((s855.scale_cpu_seconds(2.5, 0.4) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn all_platforms_enumerated() {
        let names: Vec<String> = Platform::all().into_iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["Snapdragon 855", "Snapdragon 845", "Kirin 980"]);
    }
}
