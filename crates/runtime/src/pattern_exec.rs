//! Pattern-based convolution executors over FKW storage.
//!
//! Four variants mirror Figure 13's optimization levels; each is the Rust
//! interpretation of the corresponding generated kernel of Figure 7:
//!
//! - [`OptLevel::NoOpt`] — iterates kernels in original order with a
//!   per-kernel dispatch *inside* the pixel loops (the branchy `switch`).
//! - [`OptLevel::Reorder`] — traverses FKW pattern runs: the dispatch is
//!   hoisted out of the pixel loops; execution is branch-free inside.
//! - [`OptLevel::ReorderLre`] — adds kernel-level register reuse: each
//!   tap becomes one contiguous span-accumulate over the output row,
//!   executed by the dispatched SIMD micro-kernels.
//! - [`OptLevel::Full`] — adds output-channel unrolling (filter-level
//!   LRE) and tuned tiling.

use patdnn_compiler::fkw::FkwLayer;
use patdnn_compiler::tune::space::TuningConfig;
use patdnn_core::pattern::Pattern;
use patdnn_tensor::kernels;
use patdnn_tensor::{Conv2dGeometry, Tensor};

use crate::executor::ConvExecutor;

/// Optimization level of the pattern executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// Branchy per-kernel dispatch (pre-reorder execution).
    NoOpt,
    /// Filter-kernel reordered, branch-free pattern runs.
    Reorder,
    /// Plus kernel-level load redundancy elimination.
    ReorderLre,
    /// Plus filter-level LRE and tuned tiles/unrolls.
    Full,
}

impl OptLevel {
    /// Display label matching Figure 13.
    pub fn label(&self) -> &'static str {
        match self {
            OptLevel::NoOpt => "No-Opt",
            OptLevel::Reorder => "Reorder",
            OptLevel::ReorderLre => "Reorder+LRE",
            OptLevel::Full => "Reorder+LRE+Tune",
        }
    }

    /// All levels in ascending optimization order.
    pub fn all() -> [OptLevel; 4] {
        [
            OptLevel::NoOpt,
            OptLevel::Reorder,
            OptLevel::ReorderLre,
            OptLevel::Full,
        ]
    }
}

/// A pattern kernel's taps, pre-decoded for the inner loops.
#[derive(Debug, Clone)]
struct DecodedPattern {
    /// `(kh, kw)` per entry.
    taps: Vec<(usize, usize)>,
}

impl DecodedPattern {
    fn new(p: &Pattern) -> Self {
        DecodedPattern {
            taps: p.positions(),
        }
    }
}

/// Pattern-based sparse convolution executor over FKW storage.
pub struct PatternConv {
    geo: Conv2dGeometry,
    fkw: FkwLayer,
    bias: Option<Vec<f32>>,
    level: OptLevel,
    tuning: TuningConfig,
    decoded: Vec<DecodedPattern>,
    /// Per-kernel weight base offsets (uniform entries per kernel).
    entries: usize,
}

impl PatternConv {
    /// Creates the executor.
    ///
    /// # Panics
    ///
    /// Panics if the FKW layer disagrees with the geometry.
    pub fn new(
        geo: Conv2dGeometry,
        fkw: FkwLayer,
        bias: Option<Vec<f32>>,
        level: OptLevel,
        tuning: TuningConfig,
    ) -> Self {
        assert_eq!(fkw.out_c, geo.out_channels, "filter count mismatch");
        assert_eq!(fkw.in_c, geo.in_channels, "channel count mismatch");
        assert_eq!(fkw.kernel, geo.kernel_h, "kernel size mismatch");
        let decoded = fkw.patterns.iter().map(DecodedPattern::new).collect();
        let entries = fkw.entries_per_kernel;
        PatternConv {
            geo,
            fkw,
            bias,
            level,
            tuning,
            decoded,
            entries,
        }
    }

    /// The FKW storage backing this executor.
    pub fn fkw(&self) -> &FkwLayer {
        &self.fkw
    }

    /// The optimization level.
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// Fraction of dense MACs actually executed.
    pub fn compute_fraction(&self) -> f64 {
        let dense = self.geo.in_channels * self.geo.kernel_h * self.geo.kernel_w;
        let actual = self.fkw.stored_kernels() * self.entries;
        actual as f64 / (dense * self.geo.out_channels) as f64
    }

    /// Accumulates one kernel over the whole output plane with per-pixel
    /// bounds checks (the slow path and the No-opt body).
    #[allow(clippy::too_many_arguments)]
    fn kernel_plane_checked(
        &self,
        taps: &[(usize, usize)],
        w: &[f32],
        in_plane: &[f32],
        out_plane: &mut [f32],
    ) {
        let g = &self.geo;
        for oh in 0..g.out_h {
            let orow = oh * g.out_w;
            for ow in 0..g.out_w {
                let mut acc = 0.0f32;
                for (e, &(kh, kw)) in taps.iter().enumerate() {
                    let ih = (oh * g.stride + kh) as isize - g.pad as isize;
                    let iw = (ow * g.stride + kw) as isize - g.pad as isize;
                    if ih >= 0 && ih < g.in_h as isize && iw >= 0 && iw < g.in_w as isize {
                        acc += w[e] * in_plane[ih as usize * g.in_w + iw as usize];
                    }
                }
                out_plane[orow + ow] += acc;
            }
        }
    }

    /// Accumulates one kernel with the LRE fast path (stride 1): per
    /// tap, each output row reduces to one contiguous span-accumulate
    /// `out[lo..hi] += w · input[lo'..hi']` with the tap weight hoisted
    /// into a register — no per-pixel bounds checks, and the span runs
    /// through the dispatched [`kernels`] `axpy_f32` tile (8-wide FMA on
    /// AVX2, portable loop otherwise).
    fn kernel_plane_lre(
        &self,
        taps: &[(usize, usize)],
        w: &[f32],
        in_plane: &[f32],
        out_plane: &mut [f32],
    ) {
        let g = &self.geo;
        debug_assert_eq!(g.stride, 1, "LRE fast path requires stride 1");
        let kernel = kernels::active_kernel();
        for (e, &(kh, kw)) in taps.iter().enumerate() {
            let wv = w[e];
            // Valid output columns for this tap: `ow + kw - pad` in
            // `[0, in_w)`; everything outside reads implicit zero pad.
            let lo = g.pad.saturating_sub(kw);
            let hi = (g.in_w + g.pad - kw).min(g.out_w);
            if lo >= hi {
                continue;
            }
            for oh in 0..g.out_h {
                let ih = oh + kh;
                if ih < g.pad || ih - g.pad >= g.in_h {
                    continue;
                }
                let ibase = (ih - g.pad) * g.in_w + lo + kw - g.pad;
                let orow = oh * g.out_w;
                kernel.axpy_f32(
                    wv,
                    &in_plane[ibase..ibase + hi - lo],
                    &mut out_plane[orow + lo..orow + hi],
                );
            }
        }
    }

    /// Computes one storage row's output plane (bias included), returning
    /// `(original filter index, plane)`. This is the unit of work the
    /// parallel runner distributes across threads.
    pub fn compute_row_plane(&self, input: &[f32], row: usize) -> (usize, Vec<f32>) {
        let g = &self.geo;
        let in_hw = g.in_h * g.in_w;
        let out_hw = g.out_h * g.out_w;
        let f = self.fkw.reorder[row] as usize;
        let b = self.bias.as_ref().map_or(0.0, |b| b[f]);
        let mut plane = vec![b; out_hw];
        let lre_ok =
            g.stride == 1 && self.level != OptLevel::NoOpt && self.level != OptLevel::Reorder;
        for p in 0..self.fkw.patterns.len() {
            let taps = &self.decoded[p].taps;
            for k in self.fkw.pattern_run(row, p) {
                let ic = self.fkw.index[k] as usize;
                let w = &self.fkw.weights[k * self.entries..(k + 1) * self.entries];
                let in_plane = &input[ic * in_hw..(ic + 1) * in_hw];
                if lre_ok {
                    self.kernel_plane_lre(taps, w, in_plane, &mut plane);
                } else {
                    self.kernel_plane_checked(taps, w, in_plane, &mut plane);
                }
            }
        }
        (f, plane)
    }

    fn run_batch_item(&self, input: &[f32], output: &mut [f32]) {
        let g = &self.geo;
        let in_hw = g.in_h * g.in_w;
        let out_hw = g.out_h * g.out_w;
        let np = self.fkw.patterns.len();
        let lre_ok =
            g.stride == 1 && self.level != OptLevel::NoOpt && self.level != OptLevel::Reorder;

        // Bias initialization.
        for oc in 0..g.out_channels {
            let b = self.bias.as_ref().map_or(0.0, |b| b[oc]);
            output[oc * out_hw..(oc + 1) * out_hw]
                .iter_mut()
                .for_each(|v| *v = b);
        }

        match self.level {
            OptLevel::NoOpt => {
                // Original filter order; per-kernel dispatch in the hot
                // loop: look up the kernel's run (the switch of Figure 7).
                for oc in 0..g.out_channels {
                    let row = self
                        .fkw
                        .reorder
                        .iter()
                        .position(|&f| f as usize == oc)
                        .expect("every filter stored");
                    let out_plane = &mut output[oc * out_hw..(oc + 1) * out_hw];
                    for p in 0..np {
                        for k in self.fkw.pattern_run(row, p) {
                            let ic = self.fkw.index[k] as usize;
                            let w = &self.fkw.weights[k * self.entries..(k + 1) * self.entries];
                            // The branchy variant: dispatch per kernel, no
                            // specialization, checked everywhere.
                            self.kernel_plane_checked(
                                &self.decoded[p].taps,
                                w,
                                &input[ic * in_hw..(ic + 1) * in_hw],
                                out_plane,
                            );
                        }
                    }
                }
            }
            OptLevel::Reorder | OptLevel::ReorderLre => {
                for (row, f) in self.fkw.rows() {
                    let out_plane = &mut output[f * out_hw..(f + 1) * out_hw];
                    for p in 0..np {
                        let taps = &self.decoded[p].taps;
                        for k in self.fkw.pattern_run(row, p) {
                            let ic = self.fkw.index[k] as usize;
                            let w = &self.fkw.weights[k * self.entries..(k + 1) * self.entries];
                            let in_plane = &input[ic * in_hw..(ic + 1) * in_hw];
                            if lre_ok {
                                self.kernel_plane_lre(taps, w, in_plane, out_plane);
                            } else {
                                self.kernel_plane_checked(taps, w, in_plane, out_plane);
                            }
                        }
                    }
                }
            }
            OptLevel::Full => {
                // Tiled over output channels; unroll_oc rows share their
                // traversal (filter-level LRE: identical (pattern, ic)
                // kernels in the chunk read the same input spans while
                // they are register-resident).
                let uoc = self.tuning.unroll_oc.max(1);
                let rows: Vec<(usize, usize)> = self.fkw.rows().collect();
                for chunk in rows.chunks(uoc) {
                    for p in 0..np {
                        let taps = &self.decoded[p].taps;
                        for &(row, f) in chunk {
                            let out_plane = &mut output[f * out_hw..(f + 1) * out_hw];
                            for k in self.fkw.pattern_run(row, p) {
                                let ic = self.fkw.index[k] as usize;
                                let w = &self.fkw.weights[k * self.entries..(k + 1) * self.entries];
                                let in_plane = &input[ic * in_hw..(ic + 1) * in_hw];
                                if lre_ok {
                                    self.kernel_plane_lre(taps, w, in_plane, out_plane);
                                } else {
                                    self.kernel_plane_checked(taps, w, in_plane, out_plane);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

impl PatternConv {
    /// Runs the layer into a caller-provided output tensor, reusing its
    /// allocation across calls (the serving engine's buffer-reuse path).
    ///
    /// # Panics
    ///
    /// Panics if `out` does not have the batch-matched output shape.
    pub fn run_into(&self, input: &Tensor, out: &mut Tensor) {
        let g = &self.geo;
        let s = input.shape4();
        assert_eq!(s.c, g.in_channels, "input channel mismatch");
        assert_eq!(
            out.shape(),
            &[s.n, g.out_channels, g.out_h, g.out_w],
            "output buffer shape mismatch"
        );
        let in_img = g.in_channels * g.in_h * g.in_w;
        let out_img = g.out_channels * g.out_h * g.out_w;
        for n in 0..s.n {
            let (ind, outd) = (
                &input.data()[n * in_img..(n + 1) * in_img],
                &mut out.data_mut()[n * out_img..(n + 1) * out_img],
            );
            self.run_batch_item(ind, outd);
        }
    }
}

impl ConvExecutor for PatternConv {
    fn name(&self) -> &str {
        match self.level {
            OptLevel::NoOpt => "pattern-noopt",
            OptLevel::Reorder => "pattern-reorder",
            OptLevel::ReorderLre => "pattern-lre",
            OptLevel::Full => "pattern-full",
        }
    }

    fn geometry(&self) -> &Conv2dGeometry {
        &self.geo
    }

    fn run(&self, input: &Tensor) -> Tensor {
        let g = &self.geo;
        let s = input.shape4();
        let mut out = Tensor::zeros(&[s.n, g.out_channels, g.out_h, g.out_w]);
        self.run_into(input, &mut out);
        out
    }
}

/// Builds all four optimization-level executors for one pruned layer.
pub fn all_levels(
    geo: Conv2dGeometry,
    fkw: &FkwLayer,
    bias: Option<Vec<f32>>,
    tuning: TuningConfig,
) -> Vec<PatternConv> {
    OptLevel::all()
        .into_iter()
        .map(|level| PatternConv::new(geo, fkw.clone(), bias.clone(), level, tuning))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::assert_matches_reference;
    use patdnn_compiler::fkr::filter_kernel_reorder;
    use patdnn_core::pattern_set::PatternSet;
    use patdnn_core::project::prune_layer;
    use patdnn_tensor::rng::Rng;

    fn pruned_fkw(oc: usize, ic: usize, alpha: usize, seed: u64) -> (Tensor, FkwLayer) {
        let mut rng = Rng::seed_from(seed);
        let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("t", &mut w, &set, alpha);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        (w, fkw)
    }

    #[test]
    fn all_levels_match_reference() {
        let geo = Conv2dGeometry::new(8, 6, 3, 3, 11, 11, 1, 1);
        let (w, fkw) = pruned_fkw(8, 6, 20, 1);
        let mut rng = Rng::seed_from(2);
        let bias: Vec<f32> = (0..8).map(|_| rng.uniform(-0.5, 0.5)).collect();
        for exec in all_levels(geo, &fkw, Some(bias.clone()), TuningConfig::tuned_default()) {
            assert_matches_reference(&exec, &w, Some(&bias), 1e-3, 3);
        }
    }

    #[test]
    fn strided_pattern_layer_matches_reference() {
        // Stride 2 disables the LRE fast path but must stay correct.
        let geo = Conv2dGeometry::new(4, 4, 3, 3, 9, 9, 2, 1);
        let (w, fkw) = pruned_fkw(4, 4, 8, 4);
        for exec in all_levels(geo, &fkw, None, TuningConfig::tuned_default()) {
            assert_matches_reference(&exec, &w, None, 1e-3, 5);
        }
    }

    #[test]
    fn connectivity_only_1x1_layer_matches_reference() {
        let mut rng = Rng::seed_from(6);
        let mut w = Tensor::randn(&[8, 8, 1, 1], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("proj", &mut w, &set, 16);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        let geo = Conv2dGeometry::new(8, 8, 1, 1, 7, 7, 1, 0);
        for exec in all_levels(geo, &fkw, None, TuningConfig::tuned_default()) {
            assert_matches_reference(&exec, &w, None, 1e-3, 7);
        }
    }

    #[test]
    fn compute_fraction_reflects_pruning() {
        let geo = Conv2dGeometry::new(8, 8, 3, 3, 8, 8, 1, 1);
        let (_, fkw) = pruned_fkw(8, 8, 16, 8);
        let exec = PatternConv::new(geo, fkw, None, OptLevel::Full, TuningConfig::baseline());
        // 16 kernels of 4 entries out of 64 kernels of 9 entries.
        let expect = (16.0 * 4.0) / (64.0 * 9.0);
        assert!((exec.compute_fraction() - expect).abs() < 1e-9);
    }

    #[test]
    fn batched_input_matches_itemwise_runs() {
        let geo = Conv2dGeometry::new(4, 4, 3, 3, 8, 8, 1, 1);
        let (_, fkw) = pruned_fkw(4, 4, 10, 9);
        let exec = PatternConv::new(
            geo,
            fkw,
            None,
            OptLevel::Full,
            TuningConfig::tuned_default(),
        );
        let mut rng = Rng::seed_from(10);
        let a = Tensor::randn(&[1, 4, 8, 8], &mut rng);
        let b = Tensor::randn(&[1, 4, 8, 8], &mut rng);
        let mut both = Tensor::zeros(&[2, 4, 8, 8]);
        both.data_mut()[..a.len()].copy_from_slice(a.data());
        both.data_mut()[a.len()..].copy_from_slice(b.data());
        let out_a = exec.run(&a);
        let out_b = exec.run(&b);
        let out = exec.run(&both);
        assert_eq!(&out.data()[..out_a.len()], out_a.data());
        assert_eq!(&out.data()[out_a.len()..], out_b.data());
    }

    #[test]
    fn levels_report_distinct_names() {
        let geo = Conv2dGeometry::new(4, 4, 3, 3, 6, 6, 1, 1);
        let (_, fkw) = pruned_fkw(4, 4, 8, 11);
        let names: Vec<&str> = all_levels(geo, &fkw, None, TuningConfig::baseline())
            .iter()
            .map(|e| match e.level() {
                OptLevel::NoOpt => "pattern-noopt",
                OptLevel::Reorder => "pattern-reorder",
                OptLevel::ReorderLre => "pattern-lre",
                OptLevel::Full => "pattern-full",
            })
            .collect();
        assert_eq!(
            names,
            vec![
                "pattern-noopt",
                "pattern-reorder",
                "pattern-lre",
                "pattern-full"
            ]
        );
    }
}
