//! Multi-threaded layer execution.
//!
//! The paper runs "8 threads on CPU". Two parallel schedules are
//! provided: a *contiguous* split of filters (what a framework does
//! without FKR — ragged filter lengths produce load imbalance) and an
//! FKR-aware *balanced* split that round-robins the length-sorted storage
//! rows across threads.

use std::time::Instant;

use patdnn_tensor::{Conv2dGeometry, Tensor};

use crate::executor::ConvExecutor;
use crate::pattern_exec::PatternConv;

/// Per-thread wall-clock times of one parallel run, for load-imbalance
/// reporting.
#[derive(Debug, Clone, Default)]
pub struct ThreadTimes {
    /// Seconds each thread spent computing.
    pub seconds: Vec<f64>,
}

impl ThreadTimes {
    /// Relative imbalance `(max - min) / max`; 0.0 is perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let max = self.seconds.iter().copied().fold(0.0f64, f64::max);
        let min = self.seconds.iter().copied().fold(f64::INFINITY, f64::min);
        if max <= 0.0 || !min.is_finite() {
            0.0
        } else {
            (max - min) / max
        }
    }
}

/// How storage rows are assigned to threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous chunks of rows (pre-FKR behaviour).
    Contiguous,
    /// Round-robin over the (length-sorted) storage order — the FKR
    /// balanced schedule.
    Balanced,
}

/// A multi-threaded wrapper around [`PatternConv`].
pub struct ParallelPattern {
    inner: PatternConv,
    threads: usize,
    assignments: Vec<Vec<usize>>,
}

impl ParallelPattern {
    /// Wraps `inner`, assigning its storage rows to `threads` workers
    /// under the given schedule.
    ///
    /// Requesting more threads than the layer has filters yields empty
    /// row assignments; those are dropped, so no worker thread is ever
    /// spawned with nothing to do and a ~0s idle thread cannot pin the
    /// reported load imbalance near 1.0 on small layers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(inner: PatternConv, threads: usize, schedule: Schedule) -> Self {
        assert!(threads > 0, "need at least one thread");
        let rows: Vec<usize> = (0..inner.fkw().out_c).collect();
        let mut assignments = vec![Vec::new(); threads];
        match schedule {
            Schedule::Contiguous => {
                let per = rows.len().div_ceil(threads);
                for (i, chunk) in rows.chunks(per.max(1)).enumerate() {
                    assignments[i.min(threads - 1)].extend_from_slice(chunk);
                }
            }
            Schedule::Balanced => {
                for (i, row) in rows.into_iter().enumerate() {
                    assignments[i % threads].push(row);
                }
            }
        }
        assignments.retain(|rows| !rows.is_empty());
        ParallelPattern {
            inner,
            threads,
            assignments,
        }
    }

    /// Runs one batch item, returning the output and per-thread times.
    pub fn run_timed(&self, input: &Tensor) -> (Tensor, ThreadTimes) {
        let g = *self.inner.geometry();
        let s = input.shape4();
        assert_eq!(s.n, 1, "run_timed takes batch-1 inputs");
        assert_eq!(s.c, g.in_channels, "input channel mismatch");
        let out_hw = g.out_h * g.out_w;
        let mut out = Tensor::zeros(&[1, g.out_channels, g.out_h, g.out_w]);
        let (planes, times) = self.compute_planes(input.data());
        for (f, plane) in planes {
            out.data_mut()[f * out_hw..(f + 1) * out_hw].copy_from_slice(&plane);
        }
        (out, times)
    }

    /// Computes all output planes of one batch item across the thread
    /// pool, returning `(original filter, plane)` pairs and thread times.
    fn compute_planes(&self, input_item: &[f32]) -> (Vec<(usize, Vec<f32>)>, ThreadTimes) {
        let mut per_thread: Vec<(f64, Vec<(usize, Vec<f32>)>)> = Vec::with_capacity(self.threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.threads);
            for rows in &self.assignments {
                let inner = &self.inner;
                handles.push(scope.spawn(move || {
                    let start = Instant::now();
                    let planes: Vec<(usize, Vec<f32>)> = rows
                        .iter()
                        .map(|&row| inner.compute_row_plane(input_item, row))
                        .collect();
                    (start.elapsed().as_secs_f64(), planes)
                }));
            }
            for h in handles {
                per_thread.push(h.join().expect("worker thread panicked"));
            }
        });

        let mut times = ThreadTimes::default();
        let mut all_planes = Vec::with_capacity(self.inner.fkw().out_c);
        for (secs, planes) in per_thread {
            times.seconds.push(secs);
            all_planes.extend(planes);
        }
        (all_planes, times)
    }
}

impl ConvExecutor for ParallelPattern {
    fn name(&self) -> &str {
        "pattern-parallel"
    }

    fn geometry(&self) -> &Conv2dGeometry {
        self.inner.geometry()
    }

    fn run(&self, input: &Tensor) -> Tensor {
        let g = *self.inner.geometry();
        let s = input.shape4();
        assert_eq!(s.c, g.in_channels, "input channel mismatch");
        let in_img = g.in_channels * g.in_h * g.in_w;
        let out_hw = g.out_h * g.out_w;
        let out_img = g.out_channels * out_hw;
        let mut out = Tensor::zeros(&[s.n, g.out_channels, g.out_h, g.out_w]);
        for n in 0..s.n {
            let (planes, _) = self.compute_planes(&input.data()[n * in_img..(n + 1) * in_img]);
            let item = &mut out.data_mut()[n * out_img..(n + 1) * out_img];
            for (f, plane) in planes {
                item[f * out_hw..(f + 1) * out_hw].copy_from_slice(&plane);
            }
        }
        out
    }
}

/// A multi-threaded wrapper for dense executors: the layer is split into
/// output-channel ranges, each served by an independently-built
/// sub-executor.
pub struct ParallelDense<E> {
    parts: Vec<(usize, E)>, // (oc offset, sub-executor)
    geo: Conv2dGeometry,
    name: String,
}

impl<E: ConvExecutor + Sync> ParallelDense<E> {
    /// Splits `geo` into up to `threads` contiguous output-channel ranges
    /// and builds a sub-executor for each via `factory(sub_geo, oc_range)`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(
        geo: Conv2dGeometry,
        threads: usize,
        factory: impl Fn(Conv2dGeometry, std::ops::Range<usize>) -> E,
    ) -> Self {
        assert!(threads > 0, "need at least one thread");
        let per = geo.out_channels.div_ceil(threads).max(1);
        let mut parts = Vec::new();
        let mut start = 0;
        while start < geo.out_channels {
            let end = (start + per).min(geo.out_channels);
            let sub_geo = Conv2dGeometry::new(
                end - start,
                geo.in_channels,
                geo.kernel_h,
                geo.kernel_w,
                geo.in_h,
                geo.in_w,
                geo.stride,
                geo.pad,
            );
            parts.push((start, factory(sub_geo, start..end)));
            start = end;
        }
        let name = format!(
            "parallel-{}",
            parts.first().map_or("dense", |(_, e)| e.name())
        );
        ParallelDense { parts, geo, name }
    }
}

impl<E: ConvExecutor + Sync> ConvExecutor for ParallelDense<E> {
    fn name(&self) -> &str {
        &self.name
    }

    fn geometry(&self) -> &Conv2dGeometry {
        &self.geo
    }

    fn run(&self, input: &Tensor) -> Tensor {
        let g = &self.geo;
        assert_eq!(input.shape4().n, 1, "parallel runner takes batch-1 inputs");
        let out_hw = g.out_h * g.out_w;
        let mut out = Tensor::zeros(&[1, g.out_channels, g.out_h, g.out_w]);
        let mut results: Vec<(usize, Tensor)> = Vec::with_capacity(self.parts.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.parts.len());
            for (offset, exec) in &self.parts {
                handles.push(scope.spawn(move || (*offset, exec.run(input))));
            }
            for h in handles {
                results.push(h.join().expect("worker thread panicked"));
            }
        });
        for (offset, part) in results {
            let len = part.len();
            out.data_mut()[offset * out_hw..offset * out_hw + len].copy_from_slice(part.data());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::TiledConv;
    use crate::pattern_exec::OptLevel;
    use patdnn_compiler::fkr::filter_kernel_reorder;
    use patdnn_compiler::fkw::FkwLayer;
    use patdnn_compiler::tune::space::TuningConfig;
    use patdnn_core::pattern_set::PatternSet;
    use patdnn_core::project::prune_layer;
    use patdnn_tensor::rng::Rng;

    fn pattern_exec(seed: u64) -> (Tensor, PatternConv, Conv2dGeometry) {
        let mut rng = Rng::seed_from(seed);
        let geo = Conv2dGeometry::new(16, 8, 3, 3, 12, 12, 1, 1);
        let mut w = Tensor::randn(&[16, 8, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("t", &mut w, &set, 48);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        (
            w.clone(),
            PatternConv::new(
                geo,
                fkw,
                None,
                OptLevel::Full,
                TuningConfig::tuned_default(),
            ),
            geo,
        )
    }

    #[test]
    fn parallel_pattern_matches_serial() {
        let (_, exec, _) = pattern_exec(1);
        let mut rng = Rng::seed_from(2);
        let input = Tensor::randn(&[1, 8, 12, 12], &mut rng);
        let serial = exec.run(&input);
        for schedule in [Schedule::Contiguous, Schedule::Balanced] {
            let par = ParallelPattern::new(pattern_exec(1).1, 4, schedule);
            let (out, times) = par.run_timed(&input);
            assert!(serial.approx_eq(&out, 1e-5), "schedule {schedule:?}");
            assert_eq!(times.seconds.len(), 4);
        }
    }

    #[test]
    fn parallel_dense_matches_serial() {
        let mut rng = Rng::seed_from(3);
        let geo = Conv2dGeometry::new(10, 4, 3, 3, 9, 9, 1, 1);
        let w = Tensor::randn(&[10, 4, 3, 3], &mut rng);
        let bias: Vec<f32> = (0..10).map(|_| rng.uniform(-0.5, 0.5)).collect();
        let serial = TiledConv::new(geo, w.clone(), Some(bias.clone()));
        let input = Tensor::randn(&[1, 4, 9, 9], &mut rng);
        let expect = serial.run(&input);

        let wref = &w;
        let bref = &bias;
        let par = ParallelDense::new(geo, 3, |sub_geo, range| {
            let fsize = 4 * 9;
            let wslice = wref.data()[range.start * fsize..range.end * fsize].to_vec();
            let sub_w =
                Tensor::from_vec(&[sub_geo.out_channels, 4, 3, 3], wslice).expect("subslice");
            TiledConv::new(sub_geo, sub_w, Some(bref[range].to_vec()))
        });
        let got = par.run(&input);
        assert!(expect.approx_eq(&got, 1e-5));
    }

    #[test]
    fn parallel_pattern_handles_batched_inputs() {
        let (_, exec, _) = pattern_exec(7);
        let mut rng = Rng::seed_from(8);
        let a = Tensor::randn(&[1, 8, 12, 12], &mut rng);
        let b = Tensor::randn(&[1, 8, 12, 12], &mut rng);
        let mut both = Tensor::zeros(&[2, 8, 12, 12]);
        both.data_mut()[..a.len()].copy_from_slice(a.data());
        both.data_mut()[a.len()..].copy_from_slice(b.data());
        let par = ParallelPattern::new(exec, 3, Schedule::Balanced);
        let out = par.run(&both);
        let oa = par.run(&a);
        let ob = par.run(&b);
        assert_eq!(&out.data()[..oa.len()], oa.data());
        assert_eq!(&out.data()[oa.len()..], ob.data());
    }

    #[test]
    fn imbalance_metric_behaves() {
        let t = ThreadTimes {
            seconds: vec![1.0, 1.0, 1.0],
        };
        assert_eq!(t.imbalance(), 0.0);
        let t = ThreadTimes {
            seconds: vec![2.0, 1.0],
        };
        assert!((t.imbalance() - 0.5).abs() < 1e-12);
        assert_eq!(ThreadTimes::default().imbalance(), 0.0);
    }

    #[test]
    fn oversubscribed_threads_skip_empty_assignments() {
        let mut rng = Rng::seed_from(9);
        let input = Tensor::randn(&[1, 8, 12, 12], &mut rng);
        let serial = pattern_exec(5).1.run(&input);
        // 24 threads over a 16-filter layer: 8 assignments would be
        // empty under either schedule and must be dropped, not spawned.
        for schedule in [Schedule::Contiguous, Schedule::Balanced] {
            let par = ParallelPattern::new(pattern_exec(5).1, 24, schedule);
            assert_eq!(
                par.assignments.len(),
                16,
                "{schedule:?}: no empty row assignments"
            );
            assert!(par.assignments.iter().all(|rows| !rows.is_empty()));
            let (out, times) = par.run_timed(&input);
            assert!(serial.approx_eq(&out, 1e-5), "{schedule:?}");
            assert_eq!(
                times.seconds.len(),
                16,
                "{schedule:?}: idle threads must not enter the imbalance figure"
            );
        }
    }

    #[test]
    fn balanced_schedule_distributes_rows_evenly() {
        let (_, exec, _) = pattern_exec(4);
        let par = ParallelPattern::new(exec, 5, Schedule::Balanced);
        let sizes: Vec<usize> = par.assignments.iter().map(Vec::len).collect();
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    }
}
