//! CSR sparse convolution executor.
//!
//! The paper's negative result (§6.2): "we confirmed this by implementing
//! an optimized sparse matrix version of PatDNN based on CSR, which shows
//! almost the same speed to PatDNN's dense version" — generic sparse
//! formats spend their savings on index indirection. This executor
//! reproduces that behaviour.

use patdnn_compiler::csr::CsrLayer;
use patdnn_tensor::{Conv2dGeometry, Tensor};

use crate::executor::ConvExecutor;

/// Direct sparse convolution over CSR storage.
pub struct CsrConv {
    geo: Conv2dGeometry,
    layer: CsrLayer,
    bias: Option<Vec<f32>>,
}

impl CsrConv {
    /// Creates the executor from CSR-compressed weights.
    ///
    /// # Panics
    ///
    /// Panics if the CSR dimensions disagree with the geometry.
    pub fn new(geo: Conv2dGeometry, layer: CsrLayer, bias: Option<Vec<f32>>) -> Self {
        assert_eq!(layer.out_c, geo.out_channels, "filter count mismatch");
        assert_eq!(layer.in_c, geo.in_channels, "channel count mismatch");
        assert_eq!(layer.kernel, geo.kernel_h, "kernel size mismatch");
        CsrConv { geo, layer, bias }
    }

    /// Non-zero weight count.
    pub fn nnz(&self) -> usize {
        self.layer.nnz()
    }
}

impl ConvExecutor for CsrConv {
    fn name(&self) -> &str {
        "sparse-csr"
    }

    fn geometry(&self) -> &Conv2dGeometry {
        &self.geo
    }

    fn run(&self, input: &Tensor) -> Tensor {
        let g = &self.geo;
        let batch = input.shape4().n;
        assert_eq!(input.shape4().c, g.in_channels, "input channel mismatch");
        let mut out = Tensor::zeros(&[batch, g.out_channels, g.out_h, g.out_w]);
        let in_hw = g.in_h * g.in_w;
        let out_hw = g.out_h * g.out_w;
        let ind = input.data();
        let od = out.data_mut();

        for n in 0..batch {
            for oc in 0..g.out_channels {
                let obase = (n * g.out_channels + oc) * out_hw;
                let b = self.bias.as_ref().map_or(0.0, |b| b[oc]);
                od[obase..obase + out_hw].iter_mut().for_each(|v| *v = b);
                // The CSR row drives the computation: one indirection per
                // non-zero weight per output pixel — exactly the cost the
                // paper attributes to generic sparse execution.
                for i in self.layer.row_ptr[oc] as usize..self.layer.row_ptr[oc + 1] as usize {
                    let (ic, kh, kw) = self.layer.decode_col(self.layer.col_idx[i]);
                    let w = self.layer.values[i];
                    let ibase = (n * g.in_channels + ic) * in_hw;
                    for oh in 0..g.out_h {
                        let ih = (oh * g.stride + kh) as isize - g.pad as isize;
                        if ih < 0 || ih >= g.in_h as isize {
                            continue;
                        }
                        let irow = ibase + ih as usize * g.in_w;
                        let orow = obase + oh * g.out_w;
                        for ow in 0..g.out_w {
                            let iw = (ow * g.stride + kw) as isize - g.pad as isize;
                            if iw < 0 || iw >= g.in_w as isize {
                                continue;
                            }
                            od[orow + ow] += w * ind[irow + iw as usize];
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::assert_matches_reference;
    use patdnn_core::pattern_set::PatternSet;
    use patdnn_core::project::prune_layer;
    use patdnn_tensor::rng::Rng;

    #[test]
    fn csr_executor_matches_reference_on_pruned_weights() {
        let mut rng = Rng::seed_from(1);
        let geo = Conv2dGeometry::new(6, 4, 3, 3, 10, 10, 1, 1);
        let mut w = Tensor::randn(&[6, 4, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        prune_layer("t", &mut w, &set, 12);
        let bias: Vec<f32> = (0..6).map(|_| rng.uniform(-0.5, 0.5)).collect();
        let exec = CsrConv::new(geo, CsrLayer::from_dense(&w), Some(bias.clone()));
        assert_matches_reference(&exec, &w, Some(&bias), 1e-3, 2);
        assert_eq!(exec.nnz(), w.count_nonzero());
    }

    #[test]
    fn csr_executor_handles_strided_1x1() {
        let mut rng = Rng::seed_from(3);
        let geo = Conv2dGeometry::new(4, 8, 1, 1, 8, 8, 2, 0);
        let mut w = Tensor::randn(&[4, 8, 1, 1], &mut rng);
        let set = PatternSet::standard(4);
        prune_layer("p", &mut w, &set, 16);
        let exec = CsrConv::new(geo, CsrLayer::from_dense(&w), None);
        assert_matches_reference(&exec, &w, None, 1e-3, 4);
    }

    #[test]
    fn empty_csr_layer_outputs_bias_only() {
        let geo = Conv2dGeometry::new(2, 2, 3, 3, 5, 5, 1, 1);
        let w = Tensor::zeros(&[2, 2, 3, 3]);
        let exec = CsrConv::new(geo, CsrLayer::from_dense(&w), Some(vec![1.5, -0.5]));
        let input = Tensor::filled(&[1, 2, 5, 5], 3.0);
        let out = exec.run(&input);
        assert!(out.data()[..25].iter().all(|&v| v == 1.5));
        assert!(out.data()[25..].iter().all(|&v| v == -0.5));
    }
}
