//! Simulated mobile GPU.
//!
//! The paper evaluates on a Qualcomm Adreno 640 (plus Adreno 630 and
//! Mali-G76 for portability). No mobile GPU is available offline, so this
//! module models the execution behaviour the paper's GPU claims rest on:
//! thread blocks mapped to filters, warp-style lockstep execution, *warp
//! divergence* on branchy kernels, *load imbalance* across blocks of a
//! wave, and register-load-bound memory cost. The simulator also executes
//! the layer numerically (on the host) so correctness is checked on the
//! same code path that is timed. See DESIGN.md §2 for the substitution
//! rationale.

use patdnn_compiler::lre::{register_loads, LreLevel};
use patdnn_tensor::{Conv2dGeometry, Tensor};

use crate::executor::ConvExecutor;
use crate::pattern_exec::{OptLevel, PatternConv};

/// A mobile GPU cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Model name (e.g. `Adreno 640`).
    pub name: String,
    /// Number of compute units (blocks that execute concurrently).
    pub compute_units: usize,
    /// Lanes per warp (threads executing in lockstep).
    pub warp_size: usize,
    /// Shader clock in GHz.
    pub clock_ghz: f64,
    /// MACs one lane retires per cycle (fp16 dual-issue ≈ 2.0).
    pub macs_per_cycle: f64,
    /// Penalty cycles when a warp hits a data-dependent branch
    /// (per-kernel dispatch in the No-opt executor).
    pub branch_penalty: f64,
    /// Cycles per register load per warp (memory-path cost).
    pub load_cost: f64,
}

impl GpuModel {
    /// Adreno-640-like model (Snapdragon 855).
    pub fn adreno_640() -> Self {
        GpuModel {
            name: "Adreno 640".into(),
            compute_units: 2,
            warp_size: 64,
            clock_ghz: 0.585,
            macs_per_cycle: 256.0,
            branch_penalty: 8.0,
            load_cost: 0.5,
        }
    }

    /// Adreno-630-like model (Snapdragon 845) — fewer ALUs.
    pub fn adreno_630() -> Self {
        GpuModel {
            name: "Adreno 630".into(),
            macs_per_cycle: 192.0,
            clock_ghz: 0.71,
            ..GpuModel::adreno_640()
        }
    }

    /// Mali-G76-like model (Kirin 980) — weaker memory path, so
    /// load-heavy executions suffer (the paper's Figure 18 observation).
    pub fn mali_g76() -> Self {
        GpuModel {
            name: "Mali-G76".into(),
            compute_units: 2,
            warp_size: 16,
            clock_ghz: 0.72,
            macs_per_cycle: 192.0,
            branch_penalty: 12.0,
            load_cost: 1.6,
        }
    }
}

/// Result of a simulated layer execution.
#[derive(Debug, Clone)]
pub struct GpuSimResult {
    /// Simulated total cycles.
    pub cycles: f64,
    /// Simulated wall-clock milliseconds (`cycles / clock`).
    pub millis: f64,
    /// The layer output, computed numerically on the host.
    pub output: Tensor,
}

fn wave_schedule(block_cycles: &[f64], compute_units: usize) -> f64 {
    // Blocks issue in waves of `compute_units`; each wave takes as long
    // as its slowest block (the load-imbalance effect FKR removes).
    block_cycles
        .chunks(compute_units.max(1))
        .map(|wave| wave.iter().copied().fold(0.0f64, f64::max))
        .sum()
}

/// Simulates a pattern-based layer execution on the GPU model.
///
/// One thread block per stored filter row, in storage order — so FKR's
/// length-sorted order produces balanced waves while the No-opt original
/// order produces ragged ones.
pub fn simulate_pattern_conv(model: &GpuModel, exec: &PatternConv, input: &Tensor) -> GpuSimResult {
    let geo = exec.geometry();
    let fkw = exec.fkw();
    let out_hw = (geo.out_h * geo.out_w) as f64;
    let warps = (out_hw / model.warp_size as f64).ceil();
    let level = exec.level();
    let lre = match level {
        OptLevel::NoOpt | OptLevel::Reorder => LreLevel::None,
        OptLevel::ReorderLre | OptLevel::Full => LreLevel::KernelFilter,
    };
    let (unroll_w, unroll_oc) = match level {
        OptLevel::NoOpt | OptLevel::Reorder => (1, 1),
        OptLevel::ReorderLre => (4, 1),
        OptLevel::Full => (4, 4),
    };
    // Per-layer load counts (all filters); distribute per block by kernel
    // share below.
    let loads = register_loads(geo, fkw, unroll_w, unroll_oc, lre);
    let total_kernels = fkw.stored_kernels().max(1) as f64;
    let loads_per_kernel = (loads.input_loads + loads.weight_loads) as f64 / total_kernels;

    let np = fkw.patterns.len();
    let mut block_cycles: Vec<f64> = Vec::with_capacity(fkw.out_c);
    // In the un-reordered executor blocks launch in original filter
    // order; after FKR they launch in storage order. `rows()` is storage
    // order, so emulate NoOpt by re-sorting to original filter order.
    let mut rows: Vec<(usize, usize)> = fkw.rows().collect();
    if level == OptLevel::NoOpt {
        rows.sort_by_key(|&(_, f)| f);
    }
    for &(row, _f) in &rows {
        let mut kernels = 0usize;
        let mut runs = 0usize;
        for p in 0..np {
            let len = fkw.pattern_run(row, p).len();
            kernels += len;
            runs += usize::from(len > 0);
        }
        let entries = fkw.entries_per_kernel as f64;
        let compute =
            kernels as f64 * entries * out_hw / (model.macs_per_cycle * model.warp_size as f64);
        let branches = match level {
            // Dispatch per kernel per warp of pixels.
            OptLevel::NoOpt => kernels as f64 * warps * model.branch_penalty,
            // Dispatch hoisted: one branch per pattern run.
            _ => runs as f64 * model.branch_penalty,
        };
        let memory = kernels as f64 * loads_per_kernel * model.load_cost / model.warp_size as f64;
        block_cycles.push(compute + branches + memory);
    }

    let cycles = wave_schedule(&block_cycles, model.compute_units);
    GpuSimResult {
        cycles,
        millis: cycles / (model.clock_ghz * 1e9) * 1e3,
        output: exec.run(input),
    }
}

/// Simulates a dense layer execution (one block per filter, uniform
/// cost; `winograd` divides the MAC count by the F(2x2,3x3) factor of
/// 2.25 for eligible layers).
pub fn simulate_dense_conv(
    model: &GpuModel,
    geo: &Conv2dGeometry,
    winograd: bool,
    output: Tensor,
) -> GpuSimResult {
    let out_hw = (geo.out_h * geo.out_w) as f64;
    let macs_per_filter = geo.in_channels as f64 * (geo.kernel_h * geo.kernel_w) as f64 * out_hw;
    let effective = if winograd && geo.kernel_h == 3 && geo.stride == 1 {
        macs_per_filter / 2.25
    } else {
        macs_per_filter
    };
    let compute = effective / (model.macs_per_cycle * model.warp_size as f64);
    // Dense loads: every tap of every kernel per output, no pattern reuse
    // knowledge, but regular (coalesced) access: one load per tap.
    let loads = geo.in_channels as f64 * (geo.kernel_h * geo.kernel_w) as f64 * out_hw;
    let memory = loads * model.load_cost / model.warp_size as f64;
    let per_block = compute + memory;
    let cycles = wave_schedule(&vec![per_block; geo.out_channels], model.compute_units);
    GpuSimResult {
        cycles,
        millis: cycles / (model.clock_ghz * 1e9) * 1e3,
        output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patdnn_compiler::fkr::filter_kernel_reorder;
    use patdnn_compiler::fkw::FkwLayer;
    use patdnn_compiler::tune::space::TuningConfig;
    use patdnn_core::pattern_set::PatternSet;
    use patdnn_core::project::prune_layer;
    use patdnn_tensor::rng::Rng;

    fn pattern_exec(level: OptLevel, seed: u64) -> (PatternConv, Tensor) {
        let mut rng = Rng::seed_from(seed);
        let geo = Conv2dGeometry::new(16, 8, 3, 3, 16, 16, 1, 1);
        let mut w = Tensor::randn(&[16, 8, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("t", &mut w, &set, 48);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        let input = Tensor::randn(&[1, 8, 16, 16], &mut rng);
        (
            PatternConv::new(geo, fkw, None, level, TuningConfig::tuned_default()),
            input,
        )
    }

    #[test]
    fn optimization_levels_strictly_improve_simulated_time() {
        let mut cycles = Vec::new();
        for level in OptLevel::all() {
            let (exec, input) = pattern_exec(level, 1);
            let r = simulate_pattern_conv(&GpuModel::adreno_640(), &exec, &input);
            cycles.push(r.cycles);
        }
        for pair in cycles.windows(2) {
            assert!(pair[1] <= pair[0], "levels must not slow down: {cycles:?}");
        }
        assert!(
            cycles[3] < cycles[0] * 0.7,
            "full optimization should be clearly faster: {cycles:?}"
        );
    }

    #[test]
    fn simulated_output_is_numerically_correct() {
        let (exec, input) = pattern_exec(OptLevel::Full, 2);
        let r = simulate_pattern_conv(&GpuModel::adreno_640(), &exec, &input);
        let direct = exec.run(&input);
        assert!(r.output.approx_eq(&direct, 1e-6));
    }

    #[test]
    fn wave_schedule_penalizes_imbalance() {
        // Two units: balanced [4,4,4,4] -> waves (4,4) = 8; ragged
        // [7,1,7,1] -> waves (7,7) = 14.
        assert_eq!(wave_schedule(&[4.0, 4.0, 4.0, 4.0], 2), 8.0);
        assert_eq!(wave_schedule(&[7.0, 1.0, 7.0, 1.0], 2), 14.0);
        // Sorted order fixes it: [7,7,1,1] -> (7,1)... waves are (7,7),(1,1) -> 8.
        assert_eq!(wave_schedule(&[7.0, 7.0, 1.0, 1.0], 2), 8.0);
    }

    #[test]
    fn pattern_beats_dense_on_gpu_sim() {
        let (exec, input) = pattern_exec(OptLevel::Full, 3);
        let model = GpuModel::adreno_640();
        let pat = simulate_pattern_conv(&model, &exec, &input);
        let dense_out = pat.output.clone();
        let dense = simulate_dense_conv(&model, exec.geometry(), true, dense_out);
        assert!(
            pat.cycles < dense.cycles,
            "pattern {} vs dense {}",
            pat.cycles,
            dense.cycles
        );
    }

    #[test]
    fn weaker_memory_path_hurts_dense_more() {
        // The Kirin/Mali model has expensive loads; PatDNN's reduced load
        // count means its slowdown factor is smaller than dense's —
        // the paper's "PatDNN performs more stably" portability claim.
        let (exec, input) = pattern_exec(OptLevel::Full, 4);
        let adreno = GpuModel::adreno_640();
        let mali = GpuModel::mali_g76();
        let pat_a = simulate_pattern_conv(&adreno, &exec, &input).cycles;
        let pat_m = simulate_pattern_conv(&mali, &exec, &input).cycles;
        let out = exec.run(&input);
        let den_a = simulate_dense_conv(&adreno, exec.geometry(), true, out.clone()).cycles;
        let den_m = simulate_dense_conv(&mali, exec.geometry(), true, out).cycles;
        let pat_slowdown = pat_m / pat_a;
        let dense_slowdown = den_m / den_a;
        assert!(
            pat_slowdown < dense_slowdown,
            "pattern slowdown {pat_slowdown:.2} vs dense slowdown {dense_slowdown:.2}"
        );
    }
}
