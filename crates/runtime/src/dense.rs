//! Dense convolution executors mirroring the evaluated frameworks.
//!
//! The paper compares against TFLite, TVM, and MNN. Per DESIGN.md §2 we
//! re-implement each framework's *characteristic execution strategy* on
//! the shared substrate:
//!
//! - [`NaiveConv`] — a plain untiled loop nest, no auto-tuning
//!   (TFLite-like behaviour on CPU conv layers).
//! - [`Im2colConv`] — im2col + blocked GEMM with a fixed default schedule
//!   (TVM-like default).
//! - [`WinogradConv`] — Winograd `F(2x2, 3x3)` with im2col fallback
//!   (MNN-like; the paper enables Winograd "for all dense runs").
//! - [`TiledConv`] — PatDNN's own optimized dense kernel: output tiling,
//!   4-wide output-width unrolling, branch-free interior path. The dense
//!   baseline of Figure 17.

use patdnn_tensor::im2col::conv2d_im2col;
use patdnn_tensor::winograd::conv2d_winograd;
use patdnn_tensor::{conv2d_ref, Conv2dGeometry, Tensor};

use crate::executor::ConvExecutor;

/// Plain direct loop nest (TFLite-like).
pub struct NaiveConv {
    geo: Conv2dGeometry,
    weights: Tensor,
    bias: Option<Vec<f32>>,
}

impl NaiveConv {
    /// Creates the executor.
    pub fn new(geo: Conv2dGeometry, weights: Tensor, bias: Option<Vec<f32>>) -> Self {
        assert_eq!(
            weights.shape4(),
            geo.weight_shape(),
            "weight shape mismatch"
        );
        NaiveConv { geo, weights, bias }
    }
}

impl ConvExecutor for NaiveConv {
    fn name(&self) -> &str {
        "dense-naive"
    }

    fn geometry(&self) -> &Conv2dGeometry {
        &self.geo
    }

    fn run(&self, input: &Tensor) -> Tensor {
        conv2d_ref(input, &self.weights, self.bias.as_deref(), &self.geo)
    }
}

/// im2col + blocked GEMM with a fixed schedule (TVM-like default).
pub struct Im2colConv {
    geo: Conv2dGeometry,
    weights: Tensor,
    bias: Option<Vec<f32>>,
}

impl Im2colConv {
    /// Creates the executor.
    pub fn new(geo: Conv2dGeometry, weights: Tensor, bias: Option<Vec<f32>>) -> Self {
        assert_eq!(
            weights.shape4(),
            geo.weight_shape(),
            "weight shape mismatch"
        );
        Im2colConv { geo, weights, bias }
    }
}

impl ConvExecutor for Im2colConv {
    fn name(&self) -> &str {
        "dense-im2col"
    }

    fn geometry(&self) -> &Conv2dGeometry {
        &self.geo
    }

    fn run(&self, input: &Tensor) -> Tensor {
        conv2d_im2col(input, &self.weights, self.bias.as_deref(), &self.geo)
    }
}

/// Winograd for 3×3/stride-1 layers, im2col elsewhere (MNN-like).
pub struct WinogradConv {
    geo: Conv2dGeometry,
    weights: Tensor,
    bias: Option<Vec<f32>>,
}

impl WinogradConv {
    /// Creates the executor.
    pub fn new(geo: Conv2dGeometry, weights: Tensor, bias: Option<Vec<f32>>) -> Self {
        assert_eq!(
            weights.shape4(),
            geo.weight_shape(),
            "weight shape mismatch"
        );
        WinogradConv { geo, weights, bias }
    }

    /// Whether this layer actually uses the Winograd path.
    pub fn uses_winograd(&self) -> bool {
        self.geo.kernel_h == 3 && self.geo.kernel_w == 3 && self.geo.stride == 1
    }
}

impl ConvExecutor for WinogradConv {
    fn name(&self) -> &str {
        "dense-winograd"
    }

    fn geometry(&self) -> &Conv2dGeometry {
        &self.geo
    }

    fn run(&self, input: &Tensor) -> Tensor {
        if self.uses_winograd() {
            conv2d_winograd(input, &self.weights, self.bias.as_deref(), &self.geo)
        } else {
            conv2d_im2col(input, &self.weights, self.bias.as_deref(), &self.geo)
        }
    }
}

/// PatDNN's optimized dense kernel: spatial tiling plus 4-wide
/// output-width unrolling with a branch-free interior fast path.
pub struct TiledConv {
    geo: Conv2dGeometry,
    weights: Tensor,
    bias: Option<Vec<f32>>,
}

impl TiledConv {
    /// Creates the executor.
    pub fn new(geo: Conv2dGeometry, weights: Tensor, bias: Option<Vec<f32>>) -> Self {
        assert_eq!(
            weights.shape4(),
            geo.weight_shape(),
            "weight shape mismatch"
        );
        TiledConv { geo, weights, bias }
    }
}

impl ConvExecutor for TiledConv {
    fn name(&self) -> &str {
        "dense-tiled"
    }

    fn geometry(&self) -> &Conv2dGeometry {
        &self.geo
    }

    fn run(&self, input: &Tensor) -> Tensor {
        let g = &self.geo;
        let batch = input.shape4().n;
        assert_eq!(input.shape4().c, g.in_channels, "input channel mismatch");
        let mut out = Tensor::zeros(&[batch, g.out_channels, g.out_h, g.out_w]);
        let in_hw = g.in_h * g.in_w;
        let out_hw = g.out_h * g.out_w;
        let ksize = g.kernel_h * g.kernel_w;
        let wd = self.weights.data();
        let ind = input.data();
        let od = out.data_mut();

        // Interior region where no padding checks are needed.
        let interior = |o: usize, k: usize, limit: usize| -> bool {
            let lo = o * g.stride;
            let hi = o * g.stride + k;
            lo >= g.pad && hi <= limit + g.pad
        };

        for n in 0..batch {
            for oc in 0..g.out_channels {
                let obase = (n * g.out_channels + oc) * out_hw;
                let b = self.bias.as_ref().map_or(0.0, |b| b[oc]);
                od[obase..obase + out_hw].iter_mut().for_each(|v| *v = b);
                for ic in 0..g.in_channels {
                    let ibase = (n * g.in_channels + ic) * in_hw;
                    let wbase = (oc * g.in_channels + ic) * ksize;
                    for oh in 0..g.out_h {
                        let fast_h = interior(oh, g.kernel_h, g.in_h);
                        let orow = obase + oh * g.out_w;
                        let mut ow = 0;
                        // 4-wide unrolled interior fast path.
                        while ow + 4 <= g.out_w
                            && fast_h
                            && interior(ow, g.kernel_w, g.in_w)
                            && interior(ow + 3, g.kernel_w, g.in_w)
                        {
                            let mut acc = [0.0f32; 4];
                            for kh in 0..g.kernel_h {
                                let ih = oh * g.stride + kh - g.pad;
                                let irow = ibase + ih * g.in_w;
                                for kw in 0..g.kernel_w {
                                    let w = wd[wbase + kh * g.kernel_w + kw];
                                    let i0 = irow + ow * g.stride + kw - g.pad;
                                    acc[0] += w * ind[i0];
                                    acc[1] += w * ind[i0 + g.stride];
                                    acc[2] += w * ind[i0 + 2 * g.stride];
                                    acc[3] += w * ind[i0 + 3 * g.stride];
                                }
                            }
                            od[orow + ow] += acc[0];
                            od[orow + ow + 1] += acc[1];
                            od[orow + ow + 2] += acc[2];
                            od[orow + ow + 3] += acc[3];
                            ow += 4;
                        }
                        // Slow path with bounds checks.
                        while ow < g.out_w {
                            let mut acc = 0.0f32;
                            for kh in 0..g.kernel_h {
                                let ih = (oh * g.stride + kh) as isize - g.pad as isize;
                                if ih < 0 || ih >= g.in_h as isize {
                                    continue;
                                }
                                for kw in 0..g.kernel_w {
                                    let iw = (ow * g.stride + kw) as isize - g.pad as isize;
                                    if iw < 0 || iw >= g.in_w as isize {
                                        continue;
                                    }
                                    acc += wd[wbase + kh * g.kernel_w + kw]
                                        * ind[ibase + ih as usize * g.in_w + iw as usize];
                                }
                            }
                            od[orow + ow] += acc;
                            ow += 1;
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::assert_matches_reference;
    use patdnn_tensor::rng::Rng;

    fn build(geo: Conv2dGeometry, seed: u64) -> (Tensor, Vec<f32>) {
        let mut rng = Rng::seed_from(seed);
        let w = Tensor::randn(
            &[
                geo.out_channels,
                geo.in_channels,
                geo.kernel_h,
                geo.kernel_w,
            ],
            &mut rng,
        );
        let b: Vec<f32> = (0..geo.out_channels)
            .map(|_| rng.uniform(-0.5, 0.5))
            .collect();
        (w, b)
    }

    #[test]
    fn all_dense_executors_match_reference() {
        for &(oc, ic, k, hw, stride, pad) in &[
            (4, 3, 3, 9, 1, 1),
            (2, 5, 3, 8, 2, 1),
            (3, 2, 1, 7, 1, 0),
            (2, 2, 7, 16, 2, 3),
        ] {
            let geo = Conv2dGeometry::new(oc, ic, k, k, hw, hw, stride, pad);
            let (w, b) = build(geo, 7);
            let execs: Vec<Box<dyn ConvExecutor>> = vec![
                Box::new(NaiveConv::new(geo, w.clone(), Some(b.clone()))),
                Box::new(Im2colConv::new(geo, w.clone(), Some(b.clone()))),
                Box::new(WinogradConv::new(geo, w.clone(), Some(b.clone()))),
                Box::new(TiledConv::new(geo, w.clone(), Some(b.clone()))),
            ];
            for e in &execs {
                assert_matches_reference(e.as_ref(), &w, Some(&b), 1e-3, 99);
            }
        }
    }

    #[test]
    fn winograd_path_selection() {
        let geo3 = Conv2dGeometry::new(2, 2, 3, 3, 8, 8, 1, 1);
        let (w, b) = build(geo3, 1);
        assert!(WinogradConv::new(geo3, w, Some(b)).uses_winograd());
        let geo1 = Conv2dGeometry::new(2, 2, 1, 1, 8, 8, 1, 0);
        let (w, b) = build(geo1, 2);
        assert!(!WinogradConv::new(geo1, w, Some(b)).uses_winograd());
    }

    #[test]
    fn tiled_handles_non_multiple_of_four_widths() {
        let geo = Conv2dGeometry::new(2, 2, 3, 3, 7, 7, 1, 1);
        let (w, b) = build(geo, 3);
        let exec = TiledConv::new(geo, w.clone(), Some(b.clone()));
        assert_matches_reference(&exec, &w, Some(&b), 1e-3, 4);
    }
}
