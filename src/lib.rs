//! # patdnn
//!
//! End-to-end reproduction of **PatDNN: Achieving Real-Time DNN Execution
//! on Mobile Devices with Pattern-based Weight Pruning** (ASPLOS 2020) in
//! Rust.
//!
//! This facade crate re-exports the workspace's layers:
//!
//! - [`tensor`] — dense tensors, GEMM, im2col, Winograd.
//! - [`nn`] — trainable DNN substrate and the paper's model inventories.
//! - [`core`] — pattern-based pruning: pattern sets, projections, ADMM.
//! - [`compiler`] — LR, filter-kernel reorder, FKW storage, LRE, tuning.
//! - [`runtime`] — dense/CSR/pattern executors, thread pool, GPU simulator.
//! - [`serve`] — compiled-model engine, model artifacts, dynamic
//!   batching, and the serving front-end.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.
//!
//! # Examples
//!
//! ```
//! use patdnn::nn::models::{vgg16, DatasetKind};
//!
//! let spec = vgg16(DatasetKind::ImageNet);
//! assert_eq!(spec.conv_layer_count(), 13);
//! ```

pub use patdnn_compiler as compiler;
pub use patdnn_core as core;
pub use patdnn_nn as nn;
pub use patdnn_runtime as runtime;
pub use patdnn_serve as serve;
pub use patdnn_tensor as tensor;
